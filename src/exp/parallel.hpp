// Deterministic parallel execution for sweep cells and trials.
//
// Every simulation in this repo is a pure function of its Scenario (per-
// trial seeds are derived from the configuration, never from execution
// order), so a trial grid can run on any number of threads and still
// produce bit-identical numbers: each task commits its result into a
// pre-sized slot addressed by index, and the caller reduces the slots in
// index order afterwards — the exact floating-point operation sequence of
// the serial loop. See DESIGN.md "Parallel sweep engine" for the full
// argument.
//
// TrialPool is a work-stealing pool: indices are pre-partitioned into
// contiguous per-worker runs, and a worker that drains its own run steals
// from the tail of another's. The calling thread participates as worker 0.
// jobs == 1 never spawns a thread — the loop runs inline on the caller,
// which IS the reference serial semantics the equivalence tests compare
// against. A parallel_for issued from inside a pool task runs inline too
// (the outermost loop owns the parallelism), so nested users like
// run_mix_trials inside measure_payoffs cannot oversubscribe.
//
// If tasks throw, the pool still runs/settles every task, then rethrows
// the exception with the smallest index — the same exception a serial
// loop would have surfaced first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bbrnash {

/// max(1, std::thread::hardware_concurrency).
[[nodiscard]] int hardware_jobs() noexcept;

/// Maps the user-facing jobs knob to a worker count: <= 0 means "one per
/// hardware thread", anything else is taken literally.
[[nodiscard]] int resolve_jobs(int jobs) noexcept;

/// Counters one worker accumulates across the pool's lifetime. Read them
/// only between parallel_for calls (TrialPool::worker_telemetry).
struct WorkerTelemetry {
  std::uint64_t cells_run = 0;  ///< tasks executed by this worker
  std::uint64_t steals = 0;     ///< tasks taken from another worker's run
  double busy_seconds = 0.0;    ///< wall time spent inside parallel regions
  double cpu_seconds = 0.0;     ///< thread CPU time spent there
};

/// Process-wide aggregate over every pool and region since start (or the
/// last reset): what `--jobs` telemetry reports print.
struct ParallelTelemetry {
  std::uint64_t regions = 0;    ///< parallel_for invocations that fanned out
  std::uint64_t cells_run = 0;
  std::uint64_t steals = 0;
  std::uint64_t trials_retried = 0;  ///< from note_trial_outcomes
  std::uint64_t trials_failed = 0;
  double busy_seconds = 0.0;
  double cpu_seconds = 0.0;
  double wall_seconds = 0.0;    ///< summed over regions
  int max_workers = 0;
};

[[nodiscard]] ParallelTelemetry parallel_telemetry();
void reset_parallel_telemetry();

/// Lets run_mix_trials fold its per-cell retry/failure counts into the
/// global telemetry once per cell (off the per-trial hot path).
void note_trial_outcomes(std::uint64_t retried, std::uint64_t failed);

/// Human-readable one-paragraph summary for bench/CLI footers.
[[nodiscard]] std::string describe(const ParallelTelemetry& t);

class TrialPool {
 public:
  /// jobs <= 0 means one worker per hardware thread; jobs == 1 is the
  /// serial reference path (no threads are ever created).
  explicit TrialPool(int jobs = 0);
  ~TrialPool();
  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Runs fn(i) for every i in [0, n) and returns once all completed.
  /// fn must confine its writes to state owned by index i (commit by
  /// slot); the caller reduces afterwards in index order.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Per-worker counters (index 0 = the calling thread). Only meaningful
  /// between parallel_for calls.
  [[nodiscard]] std::vector<WorkerTelemetry> worker_telemetry() const;

  /// True while the current thread is executing a pool task; such a
  /// thread's own parallel_for calls run inline.
  [[nodiscard]] static bool in_parallel_region() noexcept;

 private:
  struct Worker;

  void worker_main(std::size_t self);
  void run_tasks(std::size_t self);
  bool pop_task(std::size_t self, std::size_t* idx, bool* stolen);
  void note_error(std::size_t idx);

  int jobs_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for workers_active_==0
  std::uint64_t generation_ = 0;
  int workers_active_ = 0;
  bool stop_ = false;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> tasks_left_{0};

  std::mutex err_mu_;
  std::exception_ptr first_error_;
  std::size_t first_error_index_ = 0;
};

/// One-shot convenience: TrialPool(jobs).parallel_for(n, fn), except that
/// the serial/nested cases skip pool construction entirely.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace bbrnash
