// Payoff-oracle query service: the memoized + interpolated cache front end
// over the sweep machinery.
//
// The paper's central question — "what throughput share does the
// (N_cubic, N_other) mix get at (C, B, RTT, impairment)?" — is a query
// millions of clients could issue, not a batch job. The oracle answers it
// through a three-tier path, cheapest first:
//
//   1. exact        the canonical cell key (mix_checkpoint_key — the SAME
//                   key the sweeps, fabric and checkpoints use) hits the
//                   in-memory memo, hydrated at construction from the
//                   oracle's own append-only log plus any completed
//                   checkpoint/fabric JSONL files. Bit-identical to
//                   running run_mix_trials for that cell.
//   2. interpolated bounded multilinear interpolation over the cached
//                   neighbours on the (N_c, N_other, buffer) lattice —
//                   every other knob must match exactly (it is part of the
//                   lattice's base key). Never extrapolates: each axis
//                   needs a cached cell at or on both sides of the query,
//                   and the blend is a convex combination of the corner
//                   cells. Cross-checked against the closed forms
//                   (model/model_band.hpp); a blend outside the model
//                   envelope by more than `max_band_deviation` is rejected
//                   and the query falls through to tier 3.
//   2b. model-only  when nothing useful is cached but the Mishra/Ware
//                   closed forms apply (challenger BBR, pristine path,
//                   B >= 1 BDP), answer from the model midpoint in O(µs).
//   3. compute      genuine miss: run the cell — in-process by default,
//                   or scheduled on the multi-process fabric
//                   (run_fabric_cells) when `fabric_workers >= 1`. Under
//                   `no_compute` the oracle returns kPending instead and
//                   NEVER fabricates a number.
//
// Every computed answer is recorded to the `bbrnash-oracle-v1` append-only
// JSONL cache through CheckpointLog, so the cache inherits the same
// crash-safety story as everything else: torn trailing lines are skipped
// on reload, a killed-and-restarted oracle re-serves exactly the entries
// that reached the disk, and re-recording a key is harmless
// (last-write-wins). Cache entries never go stale by time: a cell's value
// is a pure function of its key (per-trial seeds included), so an entry
// can only be invalidated by changing the simulator itself — which is a
// schema bump, not an expiry rule.
//
// PayoffOracle is thread-safe: any number of threads may query one
// instance concurrently (the tsan-labelled hammer in
// tests/exp/test_oracle.cpp). The memo map is guarded by one mutex; disk
// appends go through CheckpointLog's single writer thread. Two threads
// that race to compute the same missing cell both run it and record the
// same bits — wasteful but correct, and impossible once either answer
// lands in the memo.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/congestion_control.hpp"
#include "exp/checkpoint.hpp"
#include "exp/fabric.hpp"
#include "exp/sweeps.hpp"
#include "model/network_params.hpp"

namespace bbrnash {

/// Provenance of an answer's numbers (reported with every answer).
enum class OracleFidelity {
  kExact,         ///< memoized empirical cell (or computed this call)
  kInterpolated,  ///< convex blend of cached neighbour cells
  kModelOnly,     ///< closed-form midpoint, no empirical data touched
};

enum class OracleStatus {
  kOk,       ///< `outcome` holds the answer
  kPending,  ///< miss under no_compute: cell scheduled-to-be-computed,
             ///< NO numbers are reported
  kFailed,   ///< the compute path ran and failed (diagnostics in message)
};

[[nodiscard]] const char* to_string(OracleFidelity f);
[[nodiscard]] const char* to_string(OracleStatus s);

/// One oracle query: the full cell coordinates. Everything in here is part
/// of the canonical key — two queries differing in any knob are different
/// cells.
struct OracleQuery {
  NetworkParams net;
  int num_cubic = 1;
  int num_other = 1;
  CcKind challenger = CcKind::kBbr;
  TrialConfig trial;
};

/// Canonical cell key for a query — mix_checkpoint_key verbatim, so oracle
/// cache entries, sweep checkpoints and fabric commits all share one key
/// space (and one %.17g float canonicalization).
[[nodiscard]] std::string oracle_key(const OracleQuery& q);

/// The (buffer, N_c, N_other) lattice coordinates of a mix cell key plus
/// the base key (the key with those three fields elided — everything that
/// must match EXACTLY for two cells to be interpolation neighbours).
/// nullopt for lease records, corrupt keys, or anything that is not a mix
/// cell key; the oracle never builds lattice entries from such records.
struct MixKeyAxes {
  Bytes buffer = 0;
  int num_cubic = 0;
  int num_other = 0;
  std::string base;
};
[[nodiscard]] std::optional<MixKeyAxes> parse_mix_key_axes(
    const std::string& key);

struct [[nodiscard]] OracleAnswer {
  OracleStatus status = OracleStatus::kFailed;
  OracleFidelity fidelity = OracleFidelity::kExact;
  MixOutcome outcome;       ///< valid only when status == kOk
  std::string key;          ///< canonical cell key of the query
  /// Closed-form cross-check: distance of the answer outside the
  /// Mishra/Ware envelope (0 = inside), or -1 when the models do not apply
  /// to this cell (non-BBR challenger, impaired path, B < 1 BDP).
  double band_deviation = -1.0;
  /// WHY a kPending answer has no numbers: "no-compute" (the config forbids
  /// running the simulator), "shed" (the serve daemon dropped the request
  /// under queue pressure), or "timeout" (the request's deadline expired
  /// before the compute finished). Empty for kOk/kFailed.
  std::string reason;
  std::string message;      ///< non-empty for kPending/kFailed

  [[nodiscard]] bool ok() const noexcept {
    return status == OracleStatus::kOk;
  }
};

struct OracleConfig {
  /// The oracle's own append-only `bbrnash-oracle-v1` cache. Empty = pure
  /// in-memory cache (still correct, nothing survives the process).
  std::string cache_path;
  /// Additional completed checkpoint/fabric logs to hydrate from (read
  /// only; lease records and torn lines are skipped).
  std::vector<std::string> hydrate_paths;
  bool allow_interpolation = true;
  bool allow_model = true;
  /// Refuse to run the simulator: a genuine miss answers kPending.
  bool no_compute = false;
  /// Reject an interpolated blend whose per-flow throughputs land further
  /// than this outside the closed-form envelope (fraction of the model
  /// midpoint). Only applied where the models are valid.
  double max_band_deviation = 0.75;
  /// Tier-3 compute: 0 = in-process run_mix_trials on the calling thread;
  /// >= 1 = schedule on the multi-process fabric with this many workers.
  int fabric_workers = 0;
  /// Fabric knobs for fabric_workers >= 1 (workers is overridden). When
  /// fabric.checkpoint_path is empty the fabric coordinates through
  /// "<cache_path>.fabric.jsonl" so a killed compute resumes too.
  FabricConfig fabric;
};

/// Monotone counters; snapshot via PayoffOracle::stats().
struct OracleStats {
  std::uint64_t queries = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t interpolated = 0;
  std::uint64_t model_only = 0;
  std::uint64_t computed = 0;          ///< tier-3 cells run this process
  std::uint64_t pending = 0;
  std::uint64_t failed = 0;
  std::uint64_t interp_no_bounds = 0;  ///< would have extrapolated
  std::uint64_t interp_band_rejected = 0;  ///< blend outside model envelope
  std::uint64_t hydrated_cells = 0;    ///< memo entries loaded at startup
  std::uint64_t hydrate_skipped_lines = 0;  ///< torn/corrupt lines skipped
};

class PayoffOracle {
 public:
  explicit PayoffOracle(OracleConfig cfg);

  /// Answers one query through the tier chain. Thread-safe.
  [[nodiscard]] OracleAnswer query(const OracleQuery& q);

  /// The CHEAP tiers only (exact memo / interpolation / nothing): returns
  /// the answer when one is available without running the simulator,
  /// nullopt on a genuine miss (which does not touch the stats counters —
  /// the caller decides whether the miss becomes a compute, a shed, or a
  /// pending answer). The serve daemon answers these inline on its poll
  /// thread. Thread-safe.
  [[nodiscard]] std::optional<OracleAnswer> query_cached(const OracleQuery& q);

  /// The COMPUTE path for a known miss: re-checks the exact memo (a racing
  /// request may have landed the cell while this one sat in a queue), then
  /// runs tier 3. The serve daemon's compute workers call this off the
  /// poll thread. Thread-safe.
  [[nodiscard]] OracleAnswer query_compute(const OracleQuery& q);

  /// The answer for a miss that must NOT compute: the closed-form
  /// model-only tier when it applies, else kPending carrying `reason`
  /// ("shed" / "no-compute" / "timeout") — numbers are never fabricated.
  /// This is the serve daemon's load-shedding and deadline-downgrade
  /// primitive. Thread-safe.
  [[nodiscard]] OracleAnswer answer_without_compute(const OracleQuery& q,
                                                   const std::string& reason);

  /// Answers a batch. Cheap tiers answer inline; the misses are grouped by
  /// shared (net, challenger, trial) and — with fabric_workers >= 1 — each
  /// group is scheduled as ONE fabric run, so a thousand-cell batch pays
  /// the fork/lease overhead once per group instead of once per cell.
  /// Answers come back in input order.
  [[nodiscard]] std::vector<OracleAnswer> query_batch(
      const std::vector<OracleQuery>& qs);

  /// Entry-for-entry snapshot of the memo (sorted by key) — lets tests
  /// assert cold-start vs hydrated vs resumed caches agree exactly.
  [[nodiscard]] std::vector<std::pair<std::string, MixOutcome>> snapshot()
      const;

  [[nodiscard]] std::size_t cache_size() const;
  [[nodiscard]] OracleStats stats() const;
  /// Blocks until every computed cell accepted so far is on disk.
  void flush();

 private:
  struct LatticePoint {
    Bytes buffer = 0;
    int num_cubic = 0;
    int num_other = 0;
    std::string key;
  };

  void insert_locked(const std::string& key, const MixOutcome& m);
  void hydrate_file(const std::string& path, bool warn_on_skip);
  /// Tiers 1 + 2 under mu_; nullopt = miss (no counters touched beyond the
  /// per-tier hit/reject ones).
  [[nodiscard]] std::optional<OracleAnswer> cached_tiers_locked(
      const OracleQuery& q, const std::string& key);
  [[nodiscard]] std::optional<MixOutcome> try_interpolate_locked(
      const OracleQuery& q, const MixKeyAxes& axes);
  [[nodiscard]] OracleAnswer answer_miss(const OracleQuery& q,
                                         const std::string& key);

  OracleConfig cfg_;
  std::unique_ptr<CheckpointLog> log_;  ///< null when cache_path is empty
  mutable std::mutex mu_;               ///< guards memo_, lattice_, stats_
  std::map<std::string, MixOutcome> memo_;
  std::map<std::string, std::vector<LatticePoint>> lattice_;
  OracleStats stats_;
};

/// The closed-form (tier 2b) answer: Mishra sync/desync midpoint per-flow
/// and aggregate rates, buffer occupancies from the same solution, queue
/// delay from the model's full-buffer assumption. nullopt outside the
/// validity domain. Exposed so the differential suite can pin the exact
/// arithmetic the oracle serves.
[[nodiscard]] std::optional<MixOutcome> model_only_outcome(
    const NetworkParams& net, int num_cubic, int num_bbr,
    double duration_sec);

}  // namespace bbrnash
