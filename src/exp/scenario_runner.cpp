#include "exp/scenario_runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "flow/receiver.hpp"
#include "flow/sender.hpp"
#include "net/aqm.hpp"
#include "net/bottleneck_link.hpp"
#include "net/delay_line.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bbrnash {

const char* to_string(AqmKind kind) {
  switch (kind) {
    case AqmKind::kDropTail:
      return "droptail";
    case AqmKind::kRed:
      return "red";
    case AqmKind::kCoDel:
      return "codel";
  }
  return "unknown";
}

Scenario make_mix_scenario(const NetworkParams& net, int num_cubic,
                           int num_other, CcKind other) {
  net.validate();
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  for (int i = 0; i < num_cubic; ++i) {
    s.flows.push_back({CcKind::kCubic, net.base_rtt});
  }
  for (int i = 0; i < num_other; ++i) {
    s.flows.push_back({other, net.base_rtt});
  }
  return s;
}

namespace {

/// A packet plus its bottleneck sojourn, travelling the forward delay line.
struct Delivery {
  Packet pkt;
  TimeNs sojourn;
};

}  // namespace

RunResult run_scenario(const Scenario& scenario) {
  if (scenario.flows.empty()) {
    throw std::invalid_argument{"scenario needs at least one flow"};
  }
  if (scenario.warmup >= scenario.duration) {
    throw std::invalid_argument{"warmup must end before the run does"};
  }

  const auto n = static_cast<std::uint32_t>(scenario.flows.size());
  Simulator sim;
  Rng rng{scenario.seed};

  BottleneckLink link{sim, scenario.capacity, scenario.buffer_bytes, n};
  switch (scenario.aqm) {
    case AqmKind::kDropTail:
      break;
    case AqmKind::kRed: {
      RedConfig red;
      red.seed = scenario.seed ^ 0x9E3779B97F4A7C15ULL;
      link.set_aqm(std::make_unique<RedPolicy>(red));
      break;
    }
    case AqmKind::kCoDel:
      link.set_aqm(std::make_unique<CoDelPolicy>());
      break;
  }

  std::vector<std::unique_ptr<Sender>> senders;
  std::vector<std::unique_ptr<Receiver>> receivers;
  std::vector<std::unique_ptr<DelayLine<Delivery>>> fwd_lines;
  std::vector<std::unique_ptr<DelayLine<Ack>>> rev_lines;
  senders.reserve(n);
  receivers.reserve(n);
  fwd_lines.reserve(n);
  rev_lines.reserve(n);

  // Per-flow access-path state (see Scenario::access_jitter).
  struct AccessPath {
    Rng rng;
    TimeNs jitter = 1;
    TimeNs last_arrival = 0;
  };
  std::vector<AccessPath> access(n);
  const TimeNs default_jitter = serialization_time(
      scenario.mss + kHeaderBytes, scenario.capacity);
  for (auto& a : access) {
    a.rng = rng.fork();
    a.jitter = std::max<TimeNs>(
        1, scenario.access_jitter >= 0 ? scenario.access_jitter
                                       : default_jitter);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    const FlowSpec& spec = scenario.flows[i];
    const TimeNs one_way = spec.base_rtt / 2;

    receivers.push_back(std::make_unique<Receiver>(i));
    fwd_lines.push_back(std::make_unique<DelayLine<Delivery>>(sim, one_way));
    rev_lines.push_back(
        std::make_unique<DelayLine<Ack>>(sim, spec.base_rtt - one_way));

    CcConfig cc_cfg;
    cc_cfg.mss = scenario.mss;
    cc_cfg.initial_cwnd = 10 * scenario.mss;
    cc_cfg.seed = rng.next_u64();
    cc_cfg.bbr_cwnd_gain = scenario.bbr_cwnd_gain;
    auto cc = make_congestion_control(spec.cc, cc_cfg);

    SenderConfig snd_cfg;
    snd_cfg.mss = scenario.mss;
    snd_cfg.transfer_bytes = spec.transfer_bytes;
    senders.push_back(std::make_unique<Sender>(
        sim, i, snd_cfg, std::move(cc),
        [&sim, &link, &access, i](const Packet& pkt) {
          // Access-path jitter with a monotonicity guard so a flow's own
          // packets are never reordered.
          access[i].last_arrival = std::max(
              access[i].last_arrival + 1,
              sim.now() + static_cast<TimeNs>(access[i].rng.next_below(
                              static_cast<std::uint64_t>(access[i].jitter))));
          sim.schedule_at(access[i].last_arrival,
                          [&link, pkt] { link.send(pkt); });
        }));

    // Bottleneck exit -> forward propagation -> receiver.
    fwd_lines[i]->set_sink([&receivers, i](const Delivery& d) {
      receivers[i]->on_packet(d.pkt, d.sojourn);
    });
    // Receiver -> reverse propagation -> sender.
    receivers[i]->set_ack_sink(
        [&rev_lines, i](const Ack& ack) { rev_lines[i]->send(ack); });
    rev_lines[i]->set_sink(
        [&senders, i](const Ack& ack) { senders[i]->on_ack(ack); });
  }

  link.set_sink([&sim, &fwd_lines](const Packet& pkt) {
    const TimeNs sojourn =
        pkt.enqueued_at == kTimeNone ? 0 : sim.now() - pkt.enqueued_at;
    fwd_lines[pkt.flow]->send(Delivery{pkt, sojourn});
  });

  // Group instrumentation: aggregate CUBIC occupancy drives the model's
  // b_cmin / b_cmax validation, aggregate non-CUBIC occupancy is b_b.
  std::vector<FlowId> cubic_ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (scenario.flows[i].cc == CcKind::kCubic) cubic_ids.push_back(i);
  }
  if (!cubic_ids.empty()) link.queue().track_group(cubic_ids);

  // Start flows: explicit start times win; otherwise a deterministic
  // jitter decorrelates the slow starts.
  for (std::uint32_t i = 0; i < n; ++i) {
    const TimeNs jitter =
        scenario.start_jitter > 0
            ? static_cast<TimeNs>(rng.next_below(
                  static_cast<std::uint64_t>(scenario.start_jitter)))
            : 0;
    const TimeNs at = scenario.flows[i].start_at != kTimeNone
                          ? scenario.flows[i].start_at
                          : jitter;
    senders[i]->start(at);
  }

  // Telemetry sampling.
  if (scenario.sample_period > 0 && scenario.on_sample) {
    for (TimeNs t = scenario.sample_period; t <= scenario.duration;
         t += scenario.sample_period) {
      sim.schedule_at(t, [&, t] {
        Snapshot snap;
        snap.t = t;
        snap.queue_bytes = link.queue().occupied_bytes();
        snap.total_drops = link.queue().total_drops();
        snap.bytes_served = link.bytes_served();
        snap.flows.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          FlowSnapshot fs;
          fs.cc = scenario.flows[i].cc;
          fs.cwnd = senders[i]->cc().cwnd();
          fs.pacing_rate = senders[i]->cc().pacing_rate();
          fs.inflight = senders[i]->inflight_bytes();
          fs.delivered = senders[i]->delivered_bytes();
          fs.queue_bytes = link.queue().flow_occupancy(i);
          fs.retransmits = senders[i]->retransmit_count();
          fs.rtos = senders[i]->rto_count();
          fs.smoothed_rtt = senders[i]->smoothed_rtt();
          snap.flows.push_back(fs);
        }
        scenario.on_sample(snap);
      });
    }
  }

  // Begin measurement after warm-up.
  Bytes served_at_warmup = 0;
  sim.schedule_at(scenario.warmup, [&] {
    link.queue().begin_measurement(sim.now());
    for (auto& s : senders) s->begin_measurement();
    served_at_warmup = link.bytes_served();
  });

  sim.run_until(scenario.duration);

  // Collect.
  link.queue().finalize(sim.now());
  const double window_sec = to_sec(scenario.duration - scenario.warmup);

  RunResult out;
  out.flows.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FlowResult fr;
    fr.cc = scenario.flows[i].cc;
    fr.base_rtt = scenario.flows[i].base_rtt;

    const Sender& s = *senders[i];
    FlowStats st;
    st.goodput_bps =
        static_cast<double>(s.delivered_bytes() -
                            s.delivered_at_measurement_start()) /
        window_sec;
    st.avg_rtt_ms = s.rtt_stats().mean();
    st.min_rtt_ms = s.rtt_stats().min();
    st.max_rtt_ms = s.rtt_stats().max();
    st.retransmits = s.retransmit_count() - s.retransmits_at_measurement_start();
    st.rtos = s.rto_count() - s.rtos_at_measurement_start();
    st.avg_inflight_bytes = s.avg_inflight_bytes();
    st.completed_at = s.completed_at();
    st.avg_queue_occupancy_bytes = link.queue().avg_flow_occupancy(i);
    st.min_queue_occupancy_bytes = link.queue().min_flow_occupancy(i);
    st.max_queue_occupancy_bytes = link.queue().max_flow_occupancy(i);
    fr.stats = st;
    out.flows.push_back(fr);
  }

  out.avg_queue_bytes = link.queue().avg_occupied_bytes();
  out.avg_queue_delay_ms = to_ms(static_cast<TimeNs>(
      out.avg_queue_bytes / scenario.capacity * kNsPerSec));
  out.link_utilization =
      static_cast<double>(link.bytes_served() - served_at_warmup) /
      (scenario.capacity * window_sec);
  out.total_drops = link.queue().total_drops();

  if (!cubic_ids.empty()) {
    out.cubic_buffer_avg = link.queue().group_avg_occupancy();
    out.cubic_buffer_min = link.queue().group_min_occupancy();
    out.cubic_buffer_max = link.queue().group_max_occupancy();
  }
  double noncubic_avg = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (scenario.flows[i].cc != CcKind::kCubic) {
      noncubic_avg += link.queue().avg_flow_occupancy(i);
    }
  }
  out.noncubic_buffer_avg = noncubic_avg;
  return out;
}

}  // namespace bbrnash
