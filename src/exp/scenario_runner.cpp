#include "exp/scenario_runner.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "flow/receiver.hpp"
#include "flow/sender.hpp"
#include "net/aqm.hpp"
#include "net/bottleneck_link.hpp"
#include "net/delay_line.hpp"
#include "net/impairment.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bbrnash {

const char* to_string(AqmKind kind) {
  switch (kind) {
    case AqmKind::kDropTail:
      return "droptail";
    case AqmKind::kRed:
      return "red";
    case AqmKind::kCoDel:
      return "codel";
  }
  assert(false && "unhandled AqmKind");
  return "?";
}

std::optional<AqmKind> parse_aqm(std::string_view name) {
  for (const AqmKind k : kAllAqmKinds) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kAbortedEventBudget:
      return "aborted-event-budget";
    case RunStatus::kAbortedWallClock:
      return "aborted-wall-clock";
    case RunStatus::kInvariantViolation:
      return "invariant-violation";
    case RunStatus::kError:
      return "error";
  }
  assert(false && "unhandled RunStatus");
  return "?";
}

std::vector<RateChange> make_flap_schedule(TimeNs period, TimeNs down_for,
                                           BytesPerSec up_rate,
                                           BytesPerSec down_rate,
                                           TimeNs until) {
  if (period <= 0 || down_for <= 0 || down_for >= period) {
    throw std::invalid_argument{
        "flap schedule needs 0 < down_for < period"};
  }
  if (up_rate <= 0 || down_rate <= 0) {
    throw std::invalid_argument{"flap rates must be > 0"};
  }
  std::vector<RateChange> out;
  for (TimeNs t = period - down_for; t < until; t += period) {
    out.push_back({t, down_rate});
    out.push_back({t + down_for, up_rate});
  }
  return out;
}

void Scenario::validate() const {
  if (capacity <= 0) {
    throw std::invalid_argument{"scenario capacity must be > 0"};
  }
  if (buffer_bytes <= 0) {
    throw std::invalid_argument{"scenario buffer_bytes must be > 0"};
  }
  if (mss <= 0) throw std::invalid_argument{"scenario mss must be > 0"};
  if (duration <= 0) {
    throw std::invalid_argument{"scenario duration must be > 0"};
  }
  if (warmup < 0) throw std::invalid_argument{"scenario warmup must be >= 0"};
  if (warmup >= duration) {
    throw std::invalid_argument{"warmup must end before the run does"};
  }
  if (start_jitter < 0) {
    throw std::invalid_argument{"scenario start_jitter must be >= 0"};
  }
  if (sample_period < 0) {
    throw std::invalid_argument{"scenario sample_period must be >= 0"};
  }
  if (bbr_cwnd_gain <= 0.0) {
    throw std::invalid_argument{"scenario bbr_cwnd_gain must be > 0"};
  }
  if (flows.empty()) {
    throw std::invalid_argument{"scenario needs at least one flow"};
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowSpec& f = flows[i];
    if (f.base_rtt <= 0) {
      throw std::invalid_argument{"flow " + std::to_string(i) +
                                  ": base_rtt must be > 0"};
    }
    if (f.transfer_bytes < 0) {
      throw std::invalid_argument{"flow " + std::to_string(i) +
                                  ": transfer_bytes must be >= 0"};
    }
    if (f.impairments) f.impairments->validate();
  }
  impairments.validate();
  ack_impairments.validate();
  for (const RateChange& c : capacity_schedule) {
    if (c.at < 0) {
      throw std::invalid_argument{"capacity_schedule times must be >= 0"};
    }
    if (c.rate <= 0) {
      throw std::invalid_argument{
          "capacity_schedule rates must be > 0 (model outages as a deep "
          "rate reduction, not zero)"};
    }
  }
}

Scenario make_mix_scenario(const NetworkParams& net, int num_cubic,
                           int num_other, CcKind other) {
  net.validate();
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  for (int i = 0; i < num_cubic; ++i) {
    s.flows.push_back({CcKind::kCubic, net.base_rtt});
  }
  for (int i = 0; i < num_other; ++i) {
    s.flows.push_back({other, net.base_rtt});
  }
  return s;
}

namespace {

/// A packet plus its bottleneck sojourn, travelling the forward delay line.
struct Delivery {
  Packet pkt;
  TimeNs sojourn;
};

/// Stateless seed mixer (SplitMix64 finalizer) for per-flow impairment
/// streams. Deliberately NOT drawn from the scenario's root Rng: a pristine
/// scenario must stay byte-identical to one where the impairment layer
/// does not exist at all.
std::uint64_t impairment_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string format_bytes_violation(const char* what, double got,
                                   double bound) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s (got %.3f, bound %.3f)", what, got,
                bound);
  return buf;
}

/// What one simulation attempt produced, before any retry policy.
struct ExecOutcome {
  RunStatus status = RunStatus::kOk;
  RunResult result;
  RunDiagnostics diagnostics;
};

ExecOutcome execute_scenario(const Scenario& scenario,
                             const WatchdogConfig& watchdog) {
  const auto n = static_cast<std::uint32_t>(scenario.flows.size());
  Simulator sim;
  Rng rng{scenario.seed};

  BottleneckLink link{sim, scenario.capacity, scenario.buffer_bytes, n};
  switch (scenario.aqm) {
    case AqmKind::kDropTail:
      break;
    case AqmKind::kRed: {
      RedConfig red;
      red.seed = scenario.seed ^ 0x9E3779B97F4A7C15ULL;
      link.set_aqm(std::make_unique<RedPolicy>(red));
      break;
    }
    case AqmKind::kCoDel:
      link.set_aqm(std::make_unique<CoDelPolicy>());
      break;
  }

  // Bottleneck rate schedule (link flaps / capacity steps).
  for (const RateChange& c : scenario.capacity_schedule) {
    sim.schedule_at(c.at, [&link, rate = c.rate] { link.set_rate(rate); });
  }

  std::vector<std::unique_ptr<Sender>> senders;
  std::vector<std::unique_ptr<Receiver>> receivers;
  std::vector<std::unique_ptr<DelayLine<Delivery>>> fwd_lines;
  std::vector<std::unique_ptr<DelayLine<Ack>>> rev_lines;
  senders.reserve(n);
  receivers.reserve(n);
  fwd_lines.reserve(n);
  rev_lines.reserve(n);

  // Impairment stages (created only for impaired paths so the pristine
  // configuration is exactly the pre-impairment-layer simulation).
  std::vector<std::unique_ptr<ImpairmentStage<Packet>>> data_stages(n);
  std::vector<std::unique_ptr<ImpairmentStage<Ack>>> ack_stages(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const ImpairmentConfig& data_cfg =
        scenario.flows[i].impairments ? *scenario.flows[i].impairments
                                      : scenario.impairments;
    if (data_cfg.any()) {
      data_stages[i] = std::make_unique<ImpairmentStage<Packet>>(
          sim, data_cfg, impairment_seed(scenario.seed, 2ULL * i + 1));
      data_stages[i]->set_sink([&link](const Packet& pkt) { link.send(pkt); });
    }
    if (scenario.ack_impairments.any()) {
      ack_stages[i] = std::make_unique<ImpairmentStage<Ack>>(
          sim, scenario.ack_impairments,
          impairment_seed(scenario.seed, 2ULL * i + 2));
    }
  }

  // Per-flow access-path state (see Scenario::access_jitter).
  struct AccessPath {
    Rng rng;
    TimeNs jitter = 1;
    TimeNs last_arrival = 0;
  };
  std::vector<AccessPath> access(n);
  const TimeNs default_jitter = serialization_time(
      scenario.mss + kHeaderBytes, scenario.capacity);
  for (auto& a : access) {
    a.rng = rng.fork();
    a.jitter = std::max<TimeNs>(
        1, scenario.access_jitter >= 0 ? scenario.access_jitter
                                       : default_jitter);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    const FlowSpec& spec = scenario.flows[i];
    const TimeNs one_way = spec.base_rtt / 2;

    receivers.push_back(std::make_unique<Receiver>(i));
    fwd_lines.push_back(std::make_unique<DelayLine<Delivery>>(sim, one_way));
    rev_lines.push_back(
        std::make_unique<DelayLine<Ack>>(sim, spec.base_rtt - one_way));

    CcConfig cc_cfg;
    cc_cfg.mss = scenario.mss;
    cc_cfg.initial_cwnd = 10 * scenario.mss;
    cc_cfg.seed = rng.next_u64();
    cc_cfg.bbr_cwnd_gain = scenario.bbr_cwnd_gain;
    auto cc = make_congestion_control(spec.cc, cc_cfg);

    SenderConfig snd_cfg;
    snd_cfg.mss = scenario.mss;
    snd_cfg.transfer_bytes = spec.transfer_bytes;
    ImpairmentStage<Packet>* data_stage = data_stages[i].get();
    senders.push_back(std::make_unique<Sender>(
        sim, i, snd_cfg, std::move(cc),
        [&sim, &link, &access, data_stage, i](const Packet& pkt) {
          // Access-path jitter with a monotonicity guard so a flow's own
          // packets are never reordered (deliberate reordering is the
          // impairment stage's job).
          access[i].last_arrival = std::max(
              access[i].last_arrival + 1,
              sim.now() + static_cast<TimeNs>(access[i].rng.next_below(
                              static_cast<std::uint64_t>(access[i].jitter))));
          sim.schedule_at(access[i].last_arrival, [&link, data_stage, pkt] {
            if (data_stage != nullptr) {
              data_stage->send(pkt);
            } else {
              link.send(pkt);
            }
          });
        }));

    // Bottleneck exit -> forward propagation -> receiver.
    fwd_lines[i]->set_sink([&receivers, i](const Delivery& d) {
      receivers[i]->on_packet(d.pkt, d.sojourn);
    });
    // Receiver -> (ACK impairments) -> reverse propagation -> sender.
    if (ack_stages[i] != nullptr) {
      ack_stages[i]->set_sink(
          [&rev_lines, i](const Ack& ack) { rev_lines[i]->send(ack); });
      ImpairmentStage<Ack>* ack_stage = ack_stages[i].get();
      receivers[i]->set_ack_sink(
          [ack_stage](const Ack& ack) { ack_stage->send(ack); });
    } else {
      receivers[i]->set_ack_sink(
          [&rev_lines, i](const Ack& ack) { rev_lines[i]->send(ack); });
    }
    rev_lines[i]->set_sink(
        [&senders, i](const Ack& ack) { senders[i]->on_ack(ack); });
  }

  link.set_sink([&sim, &fwd_lines](const Packet& pkt) {
    const TimeNs sojourn =
        pkt.enqueued_at == kTimeNone ? 0 : sim.now() - pkt.enqueued_at;
    fwd_lines[pkt.flow]->send(Delivery{pkt, sojourn});
  });

  // Group instrumentation: aggregate CUBIC occupancy drives the model's
  // b_cmin / b_cmax validation, aggregate non-CUBIC occupancy is b_b.
  std::vector<FlowId> cubic_ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (scenario.flows[i].cc == CcKind::kCubic) cubic_ids.push_back(i);
  }
  if (!cubic_ids.empty()) link.queue().track_group(cubic_ids);

  // Start flows: explicit start times win; otherwise a deterministic
  // jitter decorrelates the slow starts.
  for (std::uint32_t i = 0; i < n; ++i) {
    const TimeNs jitter =
        scenario.start_jitter > 0
            ? static_cast<TimeNs>(rng.next_below(
                  static_cast<std::uint64_t>(scenario.start_jitter)))
            : 0;
    const TimeNs at = scenario.flows[i].start_at != kTimeNone
                          ? scenario.flows[i].start_at
                          : jitter;
    senders[i]->start(at);
  }

  // Telemetry sampling.
  if (scenario.sample_period > 0 && scenario.on_sample) {
    for (TimeNs t = scenario.sample_period; t <= scenario.duration;
         t += scenario.sample_period) {
      sim.schedule_at(t, [&, t] {
        Snapshot snap;
        snap.t = t;
        snap.queue_bytes = link.queue().occupied_bytes();
        snap.total_drops = link.queue().total_drops();
        snap.bytes_served = link.bytes_served();
        snap.flows.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          FlowSnapshot fs;
          fs.cc = scenario.flows[i].cc;
          fs.cwnd = senders[i]->cc().cwnd();
          fs.pacing_rate = senders[i]->cc().pacing_rate();
          fs.inflight = senders[i]->inflight_bytes();
          fs.delivered = senders[i]->delivered_bytes();
          fs.queue_bytes = link.queue().flow_occupancy(i);
          fs.retransmits = senders[i]->retransmit_count();
          fs.rtos = senders[i]->rto_count();
          fs.smoothed_rtt = senders[i]->smoothed_rtt();
          snap.flows.push_back(fs);
        }
        scenario.on_sample(snap);
      });
    }
  }

  // Begin measurement after warm-up.
  Bytes served_at_warmup = 0;
  sim.schedule_at(scenario.warmup, [&] {
    link.queue().begin_measurement(sim.now());
    for (auto& s : senders) s->begin_measurement();
    served_at_warmup = link.bytes_served();
  });

  // Watchdog-sliced run loop. Slicing is observationally identical to one
  // run_until(duration) call — no event is added or reordered — it only
  // creates safe points to stop at.
  ExecOutcome out;
  sim.set_event_budget(watchdog.max_events);
  const auto wall_start = std::chrono::steady_clock::now();
  const TimeNs slice = from_ms(500);
  for (TimeNs t = 0; t < scenario.duration;) {
    t = std::min<TimeNs>(t + slice, scenario.duration);
    sim.run_until(t);
    if (sim.budget_exhausted()) {
      out.status = RunStatus::kAbortedEventBudget;
      out.diagnostics.message =
          "watchdog: event budget of " + std::to_string(watchdog.max_events) +
          " exhausted at simulated t=" + std::to_string(sim.now()) + " ns";
      break;
    }
    if (watchdog.max_wall_seconds > 0.0) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (wall > watchdog.max_wall_seconds) {
        out.status = RunStatus::kAbortedWallClock;
        out.diagnostics.message =
            "watchdog: wall-clock limit of " +
            std::to_string(watchdog.max_wall_seconds) +
            " s exceeded at simulated t=" + std::to_string(sim.now()) + " ns";
        break;
      }
    }
  }

  // Collect. Aborted runs yield partial measurements (diagnostics only).
  link.queue().finalize(sim.now());
  const double window_sec =
      to_sec(std::max<TimeNs>(0, sim.now() - scenario.warmup));

  RunResult& res = out.result;
  res.flows.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FlowResult fr;
    fr.cc = scenario.flows[i].cc;
    fr.base_rtt = scenario.flows[i].base_rtt;

    const Sender& s = *senders[i];
    FlowStats st;
    st.goodput_bps =
        window_sec > 0.0
            ? static_cast<double>(s.delivered_bytes() -
                                  s.delivered_at_measurement_start()) /
                  window_sec
            : 0.0;
    st.avg_rtt_ms = s.rtt_stats().mean();
    st.min_rtt_ms = s.rtt_stats().min();
    st.max_rtt_ms = s.rtt_stats().max();
    st.retransmits = s.retransmit_count() - s.retransmits_at_measurement_start();
    st.rtos = s.rto_count() - s.rtos_at_measurement_start();
    st.avg_inflight_bytes = s.avg_inflight_bytes();
    st.completed_at = s.completed_at();
    st.avg_queue_occupancy_bytes = link.queue().avg_flow_occupancy(i);
    st.min_queue_occupancy_bytes = link.queue().min_flow_occupancy(i);
    st.max_queue_occupancy_bytes = link.queue().max_flow_occupancy(i);
    fr.stats = st;
    res.flows.push_back(fr);
  }

  res.avg_queue_bytes = link.queue().avg_occupied_bytes();
  res.avg_queue_delay_ms = to_ms(static_cast<TimeNs>(
      res.avg_queue_bytes / scenario.capacity * kNsPerSec));
  res.link_utilization =
      window_sec > 0.0
          ? static_cast<double>(link.bytes_served() - served_at_warmup) /
                (scenario.capacity * window_sec)
          : 0.0;
  res.total_drops = link.queue().total_drops();

  if (!cubic_ids.empty()) {
    res.cubic_buffer_avg = link.queue().group_avg_occupancy();
    res.cubic_buffer_min = link.queue().group_min_occupancy();
    res.cubic_buffer_max = link.queue().group_max_occupancy();
  }
  double noncubic_avg = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (scenario.flows[i].cc != CcKind::kCubic) {
      noncubic_avg += link.queue().avg_flow_occupancy(i);
    }
  }
  res.noncubic_buffer_avg = noncubic_avg;

  for (std::uint32_t i = 0; i < n; ++i) {
    if (data_stages[i] != nullptr) {
      const ImpairmentCounters& c = data_stages[i]->counters();
      res.data_impairments.offered += c.offered;
      res.data_impairments.dropped += c.dropped;
      res.data_impairments.duplicated += c.duplicated;
      res.data_impairments.reordered += c.reordered;
    }
    if (ack_stages[i] != nullptr) {
      const ImpairmentCounters& c = ack_stages[i]->counters();
      res.ack_impairments.offered += c.offered;
      res.ack_impairments.dropped += c.dropped;
      res.ack_impairments.duplicated += c.duplicated;
      res.ack_impairments.reordered += c.reordered;
    }
  }

  out.diagnostics.events_executed = sim.events_executed();
  out.diagnostics.sim_time_reached = sim.now();

  // Always-on invariant guards (promoted from test-only assertions).
  // Checked only for runs that completed: an aborted run is legitimately
  // partial and already carries its own diagnosis.
  if (out.status == RunStatus::kOk) {
    std::string violations;
    const auto add = [&violations](const std::string& v) {
      if (!violations.empty()) violations += "; ";
      violations += v;
    };
    const double peak_mbps = to_mbps(scenario.peak_capacity());
    const double total_mbps = res.total_goodput_all_mbps();
    if (total_mbps > peak_mbps * 1.05 + 1e-9) {
      add(format_bytes_violation(
          "conservation: sum of goodputs exceeds peak capacity (Mbps)",
          total_mbps, peak_mbps * 1.05));
    }
    if (link.queue().max_occupied_bytes() > scenario.buffer_bytes) {
      add(format_bytes_violation(
          "queue bound: occupancy exceeded the configured buffer (bytes)",
          static_cast<double>(link.queue().max_occupied_bytes()),
          static_cast<double>(scenario.buffer_bytes)));
    }
    if (sim.now() != scenario.duration) {
      add(format_bytes_violation(
          "clock: completed run did not reach the scenario duration (ns)",
          static_cast<double>(sim.now()),
          static_cast<double>(scenario.duration)));
    }
    if (!violations.empty()) {
      out.status = RunStatus::kInvariantViolation;
      out.diagnostics.message = violations;
    }
  }
  return out;
}

}  // namespace

RunResult run_scenario(const Scenario& scenario) {
  scenario.validate();
  ExecOutcome out = execute_scenario(scenario, WatchdogConfig{});
  if (out.status == RunStatus::kInvariantViolation) {
    throw InvariantViolation{out.diagnostics.message};
  }
  return std::move(out.result);
}

RunOutcome run_scenario_guarded(const Scenario& scenario,
                                const GuardConfig& guard) {
  RunOutcome outcome;
  outcome.seed_used = scenario.seed;
  try {
    scenario.validate();
  } catch (const std::exception& e) {
    // Config errors are not retryable; report them once.
    outcome.status = RunStatus::kError;
    outcome.diagnostics.message = e.what();
    return outcome;
  }

  const int max_attempts = std::max(1, guard.max_attempts);
  Scenario attempt = scenario;
  for (int i = 0; i < max_attempts; ++i) {
    attempt.seed = scenario.seed + static_cast<std::uint64_t>(i) *
                                       guard.seed_bump;
    outcome.attempts = i + 1;
    outcome.seed_used = attempt.seed;
    const bool injected =
        std::find(guard.inject_failure_seeds.begin(),
                  guard.inject_failure_seeds.end(),
                  attempt.seed) != guard.inject_failure_seeds.end();
    if (injected) {
      outcome.status = RunStatus::kInvariantViolation;
      outcome.diagnostics = RunDiagnostics{};
      outcome.diagnostics.message =
          "injected failure for seed " + std::to_string(attempt.seed);
      continue;
    }
    try {
      const auto wall_start = std::chrono::steady_clock::now();
      ExecOutcome exec = execute_scenario(attempt, guard.watchdog);
      outcome.status = exec.status;
      outcome.result = std::move(exec.result);
      outcome.diagnostics = std::move(exec.diagnostics);
      outcome.diagnostics.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
    } catch (const std::exception& e) {
      outcome.status = RunStatus::kError;
      outcome.diagnostics = RunDiagnostics{};
      outcome.diagnostics.message = e.what();
    }
    if (outcome.ok()) break;
  }
  return outcome;
}

}  // namespace bbrnash
