#include "exp/scenario_runner.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cc/cc_variant.hpp"
#include "exp/chaos.hpp"
#include "flow/receiver.hpp"
#include "flow/sender.hpp"
#include "net/aqm.hpp"
#include "net/bottleneck_link.hpp"
#include "net/delay_line.hpp"
#include "net/impairment.hpp"
#include "sim/audit.hpp"
#include "sim/flight_recorder.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bbrnash {

const char* to_string(AqmKind kind) {
  switch (kind) {
    case AqmKind::kDropTail:
      return "droptail";
    case AqmKind::kRed:
      return "red";
    case AqmKind::kCoDel:
      return "codel";
  }
  assert(false && "unhandled AqmKind");
  return "?";
}

std::optional<AqmKind> parse_aqm(std::string_view name) {
  for (const AqmKind k : kAllAqmKinds) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kAbortedEventBudget:
      return "aborted-event-budget";
    case RunStatus::kAbortedWallClock:
      return "aborted-wall-clock";
    case RunStatus::kInvariantViolation:
      return "invariant-violation";
    case RunStatus::kError:
      return "error";
  }
  assert(false && "unhandled RunStatus");
  return "?";
}

std::vector<RateChange> make_flap_schedule(TimeNs period, TimeNs down_for,
                                           BytesPerSec up_rate,
                                           BytesPerSec down_rate,
                                           TimeNs until) {
  if (period <= 0 || down_for <= 0 || down_for >= period) {
    throw std::invalid_argument{
        "flap schedule needs 0 < down_for < period"};
  }
  if (up_rate <= 0 || down_rate <= 0) {
    throw std::invalid_argument{"flap rates must be > 0"};
  }
  std::vector<RateChange> out;
  for (TimeNs t = period - down_for; t < until; t += period) {
    out.push_back({t, down_rate});
    out.push_back({t + down_for, up_rate});
  }
  return out;
}

void Scenario::validate() const {
  if (capacity <= 0) {
    throw std::invalid_argument{"scenario capacity must be > 0"};
  }
  if (buffer_bytes <= 0) {
    throw std::invalid_argument{"scenario buffer_bytes must be > 0"};
  }
  if (mss <= 0) throw std::invalid_argument{"scenario mss must be > 0"};
  if (duration <= 0) {
    throw std::invalid_argument{"scenario duration must be > 0"};
  }
  if (warmup < 0) throw std::invalid_argument{"scenario warmup must be >= 0"};
  if (warmup >= duration) {
    throw std::invalid_argument{"warmup must end before the run does"};
  }
  if (start_jitter < 0) {
    throw std::invalid_argument{"scenario start_jitter must be >= 0"};
  }
  if (sample_period < 0) {
    throw std::invalid_argument{"scenario sample_period must be >= 0"};
  }
  if (bbr_cwnd_gain <= 0.0) {
    throw std::invalid_argument{"scenario bbr_cwnd_gain must be > 0"};
  }
  if (flows.empty()) {
    throw std::invalid_argument{"scenario needs at least one flow"};
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowSpec& f = flows[i];
    if (f.base_rtt <= 0) {
      throw std::invalid_argument{"flow " + std::to_string(i) +
                                  ": base_rtt must be > 0"};
    }
    if (f.transfer_bytes < 0) {
      throw std::invalid_argument{"flow " + std::to_string(i) +
                                  ": transfer_bytes must be >= 0"};
    }
    if (f.impairments) f.impairments->validate();
  }
  impairments.validate();
  ack_impairments.validate();
  audit.validate();
  for (const RateChange& c : capacity_schedule) {
    if (c.at < 0) {
      throw std::invalid_argument{"capacity_schedule times must be >= 0"};
    }
    if (c.rate <= 0) {
      throw std::invalid_argument{
          "capacity_schedule rates must be > 0 (model outages as a deep "
          "rate reduction, not zero)"};
    }
  }
}

Scenario make_mix_scenario(const NetworkParams& net, int num_cubic,
                           int num_other, CcKind other) {
  net.validate();
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  for (int i = 0; i < num_cubic; ++i) {
    s.flows.push_back({CcKind::kCubic, net.base_rtt});
  }
  for (int i = 0; i < num_other; ++i) {
    s.flows.push_back({other, net.base_rtt});
  }
  return s;
}

namespace {

/// A packet plus its bottleneck sojourn, travelling the forward delay line.
struct Delivery {
  Packet pkt;
  TimeNs sojourn;
};

/// Stateless seed mixer (SplitMix64 finalizer) for per-flow impairment
/// streams. Deliberately NOT drawn from the scenario's root Rng: a pristine
/// scenario must stay byte-identical to one where the impairment layer
/// does not exist at all.
std::uint64_t impairment_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string format_bytes_violation(const char* what, double got,
                                   double bound) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s (got %.3f, bound %.3f)", what, got,
                bound);
  return buf;
}

/// What one simulation attempt produced, before any retry policy.
struct ExecOutcome {
  RunStatus status = RunStatus::kOk;
  RunResult result;
  RunDiagnostics diagnostics;
  /// True when a chaos fault fired inside this attempt. Chaos faults are
  /// environmental, so the guarded runner redoes the attempt with the SAME
  /// seed instead of consuming a seed-bump retry.
  bool chaos_injected = false;
};

ExecOutcome execute_scenario(const Scenario& scenario,
                             const WatchdogConfig& watchdog,
                             ChaosInjector* chaos, FlightRecorder* recorder) {
  const auto n = static_cast<std::uint32_t>(scenario.flows.size());
  Simulator sim;
  Rng rng{scenario.seed};

  ExecOutcome out;

  // Conservation-audit ledger (only when the scenario asks for it; the
  // disabled path below is byte-for-byte the uninstrumented simulation).
  std::unique_ptr<ConservationAudit> audit;
  if (scenario.audit.enabled) {
    audit = std::make_unique<ConservationAudit>(scenario.audit, n);
  }
  ConservationAudit* audit_p = audit.get();
  const bool instrumented = audit_p != nullptr || recorder != nullptr;

  // Chaos: forced trial exception / event-loop stall / wall stall, planned
  // up front so the fault schedule is a pure function of (chaos seed,
  // scenario seed). At most ONE class arms per attempt: each fault must
  // actually reach its own recovery mechanism (the stalls must genuinely
  // trip the watchdogs), which an earlier-in-the-run exception would mask.
  // Fire-once per site means the retry after each fault arms the next
  // class, so one guarded run walks every eligible class and then a clean
  // attempt.
  const std::string chaos_site = "seed=" + std::to_string(scenario.seed);
  const TimeNs chaos_at =
      std::max<TimeNs>(1, (scenario.warmup > 0 ? scenario.warmup
                                               : scenario.duration) /
                              2);
  std::function<void()> chaos_spinner;  // outlives every scheduled copy
  bool chaos_wall_stall = false;
  if (chaos != nullptr) {
    if (chaos->should_fire(ChaosClass::kTrialException,
                           "trial-exception " + chaos_site)) {
      out.chaos_injected = true;
      sim.schedule_at(chaos_at, [site = chaos_site] {
        throw ChaosFault{ChaosClass::kTrialException,
                         "trial-exception " + site};
      });
    } else if (watchdog.max_events > 0 &&
               chaos->should_fire(ChaosClass::kEventStall,
                                  "event-stall " + chaos_site)) {
      // An event stall is only injected when an event budget exists to
      // trip — otherwise it would spin forever.
      out.chaos_injected = true;
      chaos_spinner = [&sim, &chaos_spinner] {
        sim.schedule_in(1, chaos_spinner);
      };
      sim.schedule_at(chaos_at, chaos_spinner);
    } else if (watchdog.max_wall_seconds > 0.0 &&
               chaos->should_fire(ChaosClass::kWallStall,
                                  "wall-stall " + chaos_site)) {
      chaos_wall_stall = true;
      out.chaos_injected = true;
    }
  }

  BottleneckLink link{sim, scenario.capacity, scenario.buffer_bytes, n};
  switch (scenario.aqm) {
    case AqmKind::kDropTail:
      break;
    case AqmKind::kRed: {
      RedConfig red;
      red.seed = scenario.seed ^ 0x9E3779B97F4A7C15ULL;
      link.set_aqm(std::make_unique<RedPolicy>(red));
      break;
    }
    case AqmKind::kCoDel:
      link.set_aqm(std::make_unique<CoDelPolicy>());
      break;
  }

  // Bottleneck rate schedule (link flaps / capacity steps).
  for (const RateChange& c : scenario.capacity_schedule) {
    if (recorder != nullptr) {
      sim.schedule_at(c.at, [&link, &sim, recorder, rate = c.rate] {
        recorder->note(sim.now(), FlightEventKind::kRateChange, 0,
                       static_cast<std::uint64_t>(rate));
        link.set_rate(rate);
      });
    } else {
      sim.schedule_at(c.at, [&link, rate = c.rate] { link.set_rate(rate); });
    }
  }

  std::vector<std::unique_ptr<Sender>> senders;
  std::vector<std::unique_ptr<Receiver>> receivers;
  std::vector<std::unique_ptr<DelayLine<Delivery>>> fwd_lines;
  std::vector<std::unique_ptr<DelayLine<Ack>>> rev_lines;
  senders.reserve(n);
  receivers.reserve(n);
  fwd_lines.reserve(n);
  rev_lines.reserve(n);

  // Impairment stages (created only for impaired paths so the pristine
  // configuration is exactly the pre-impairment-layer simulation).
  std::vector<std::unique_ptr<ImpairmentStage<Packet>>> data_stages(n);
  std::vector<std::unique_ptr<ImpairmentStage<Ack>>> ack_stages(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const ImpairmentConfig& data_cfg =
        scenario.flows[i].impairments ? *scenario.flows[i].impairments
                                      : scenario.impairments;
    if (data_cfg.any()) {
      data_stages[i] = std::make_unique<ImpairmentStage<Packet>>(
          sim, data_cfg, impairment_seed(scenario.seed, 2ULL * i + 1));
      data_stages[i]->set_sink([&link](const Packet& pkt) { link.send(pkt); });
    }
    if (scenario.ack_impairments.any()) {
      ack_stages[i] = std::make_unique<ImpairmentStage<Ack>>(
          sim, scenario.ack_impairments,
          impairment_seed(scenario.seed, 2ULL * i + 2));
    }
  }

  // Per-flow access-path state (see Scenario::access_jitter).
  struct AccessPath {
    Rng rng;
    TimeNs jitter = 1;
    TimeNs last_arrival = 0;
  };
  std::vector<AccessPath> access(n);
  const TimeNs default_jitter = serialization_time(
      scenario.mss + kHeaderBytes, scenario.capacity);
  for (auto& a : access) {
    a.rng = rng.fork();
    a.jitter = std::max<TimeNs>(
        1, scenario.access_jitter >= 0 ? scenario.access_jitter
                                       : default_jitter);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    const FlowSpec& spec = scenario.flows[i];
    const TimeNs one_way = spec.base_rtt / 2;

    receivers.push_back(std::make_unique<Receiver>(i));
    fwd_lines.push_back(std::make_unique<DelayLine<Delivery>>(sim, one_way));
    rev_lines.push_back(
        std::make_unique<DelayLine<Ack>>(sim, spec.base_rtt - one_way));

    CcConfig cc_cfg;
    cc_cfg.mss = scenario.mss;
    cc_cfg.initial_cwnd = 10 * scenario.mss;
    cc_cfg.seed = rng.next_u64();
    cc_cfg.bbr_cwnd_gain = scenario.bbr_cwnd_gain;
    CcVariant cc = scenario.virtual_cc_dispatch
                       ? CcVariant{make_congestion_control(spec.cc, cc_cfg)}
                       : make_cc_variant(spec.cc, cc_cfg);

    SenderConfig snd_cfg;
    snd_cfg.mss = scenario.mss;
    snd_cfg.transfer_bytes = spec.transfer_bytes;
    ImpairmentStage<Packet>* data_stage = data_stages[i].get();
    if (instrumented) {
      // Audit/recorder wrapper: identical transmit logic plus the ledger's
      // independent injection count and the flight-recorder note. Installed
      // as a *separate* lambda so the uninstrumented path pays nothing.
      senders.push_back(std::make_unique<Sender>(
          sim, i, snd_cfg, std::move(cc),
          [&sim, &link, &access, data_stage, audit_p, recorder,
           i](const Packet& pkt) {
            if (audit_p != nullptr) audit_p->note_injected(i);
            if (recorder != nullptr) {
              recorder->note(sim.now(), FlightEventKind::kInject, i, pkt.seq,
                             pkt.is_retransmit ? 1 : 0);
            }
            access[i].last_arrival = std::max(
                access[i].last_arrival + 1,
                sim.now() + static_cast<TimeNs>(access[i].rng.next_below(
                                static_cast<std::uint64_t>(access[i].jitter))));
            sim.schedule_at(access[i].last_arrival,
                            [&link, data_stage, audit_p, i, pkt] {
                              if (audit_p != nullptr) {
                                audit_p->note_access_exit(i);
                              }
                              if (data_stage != nullptr) {
                                data_stage->send(pkt);
                              } else {
                                link.send(pkt);
                              }
                            });
          }));
    } else {
      senders.push_back(std::make_unique<Sender>(
          sim, i, snd_cfg, std::move(cc),
          [&sim, &link, &access, data_stage, i](const Packet& pkt) {
            // Access-path jitter with a monotonicity guard so a flow's own
            // packets are never reordered (deliberate reordering is the
            // impairment stage's job).
            access[i].last_arrival = std::max(
                access[i].last_arrival + 1,
                sim.now() + static_cast<TimeNs>(access[i].rng.next_below(
                                static_cast<std::uint64_t>(access[i].jitter))));
            sim.schedule_at(access[i].last_arrival, [&link, data_stage, pkt] {
              if (data_stage != nullptr) {
                data_stage->send(pkt);
              } else {
                link.send(pkt);
              }
            });
          }));
    }

    // Bottleneck exit -> forward propagation -> receiver.
    if (recorder != nullptr) {
      fwd_lines[i]->set_sink([&receivers, &sim, recorder, i](const Delivery& d) {
        recorder->note(sim.now(), FlightEventKind::kDeliver, i, d.pkt.seq);
        receivers[i]->on_packet(d.pkt, d.sojourn);
      });
    } else {
      fwd_lines[i]->set_sink([&receivers, i](const Delivery& d) {
        receivers[i]->on_packet(d.pkt, d.sojourn);
      });
    }
    // Receiver -> (ACK impairments) -> reverse propagation -> sender.
    if (ack_stages[i] != nullptr) {
      ack_stages[i]->set_sink(
          [&rev_lines, i](const Ack& ack) { rev_lines[i]->send(ack); });
      ImpairmentStage<Ack>* ack_stage = ack_stages[i].get();
      receivers[i]->set_ack_sink(
          [ack_stage](const Ack& ack) { ack_stage->send(ack); });
    } else {
      receivers[i]->set_ack_sink(
          [&rev_lines, i](const Ack& ack) { rev_lines[i]->send(ack); });
    }
    rev_lines[i]->set_sink(
        [&senders, i](const Ack& ack) { senders[i]->on_ack(ack); });
  }

  link.set_sink([&sim, &fwd_lines](const Packet& pkt) {
    const TimeNs sojourn =
        pkt.enqueued_at == kTimeNone ? 0 : sim.now() - pkt.enqueued_at;
    fwd_lines[pkt.flow]->send(Delivery{pkt, sojourn});
  });
  if (recorder != nullptr) {
    link.set_drop_hook([&sim, recorder](const Packet& pkt) {
      recorder->note(sim.now(), FlightEventKind::kQueueDrop, pkt.flow,
                     pkt.seq);
    });
  }

  // Group instrumentation: aggregate CUBIC occupancy drives the model's
  // b_cmin / b_cmax validation, aggregate non-CUBIC occupancy is b_b.
  std::vector<FlowId> cubic_ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (scenario.flows[i].cc == CcKind::kCubic) cubic_ids.push_back(i);
  }
  if (!cubic_ids.empty()) link.queue().track_group(cubic_ids);

  // Start flows: explicit start times win; otherwise a deterministic
  // jitter decorrelates the slow starts.
  for (std::uint32_t i = 0; i < n; ++i) {
    const TimeNs jitter =
        scenario.start_jitter > 0
            ? static_cast<TimeNs>(rng.next_below(
                  static_cast<std::uint64_t>(scenario.start_jitter)))
            : 0;
    const TimeNs at = scenario.flows[i].start_at != kTimeNone
                          ? scenario.flows[i].start_at
                          : jitter;
    senders[i]->start(at);
  }

  // Telemetry sampling.
  if (scenario.sample_period > 0 && scenario.on_sample) {
    for (TimeNs t = scenario.sample_period; t <= scenario.duration;
         t += scenario.sample_period) {
      sim.schedule_at(t, [&, t] {
        Snapshot snap;
        snap.t = t;
        snap.queue_bytes = link.queue().occupied_bytes();
        snap.total_drops = link.queue().total_drops();
        snap.bytes_served = link.bytes_served();
        snap.flows.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          FlowSnapshot fs;
          fs.cc = scenario.flows[i].cc;
          fs.cwnd = senders[i]->cc().cwnd();
          fs.pacing_rate = senders[i]->cc().pacing_rate();
          fs.inflight = senders[i]->inflight_bytes();
          fs.delivered = senders[i]->delivered_bytes();
          fs.queue_bytes = link.queue().flow_occupancy(i);
          fs.retransmits = senders[i]->retransmit_count();
          fs.rtos = senders[i]->rto_count();
          fs.smoothed_rtt = senders[i]->smoothed_rtt();
          snap.flows.push_back(fs);
        }
        scenario.on_sample(snap);
      });
    }
  }

  // Audit sampling: read-only ledger checks at a fixed cadence. The sample
  // events never mutate simulation state, so an audited run produces
  // results bit-identical to an unaudited one.
  if (audit_p != nullptr) {
    for (TimeNs t = scenario.audit.sample_period; t <= scenario.duration;
         t += scenario.audit.sample_period) {
      sim.schedule_at(t, [&, t] {
        AuditSample& smp = audit_p->sample_buffer();
        smp.t = t;
        smp.queue_bytes = link.queue().occupied_bytes();
        smp.buffer_bytes = scenario.buffer_bytes;
        smp.bytes_served = link.bytes_served();
        Bytes flow_bytes_sum = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
          FlowAuditSample& f = smp.flows[i];
          f = FlowAuditSample{};
          f.injected = audit_p->injected(i);
          f.access_pending = audit_p->access_pending(i);
          if (data_stages[i] != nullptr) {
            const ImpairmentCounters& c = data_stages[i]->counters();
            f.stage_dropped = c.dropped;
            f.stage_duplicated = c.duplicated;
            f.stage_pending = data_stages[i]->pending();
          }
          f.queue_packets = link.queue().flow_packets(i);
          f.queue_dropped = link.queue().drops(i);
          f.fwd_pending = fwd_lines[i]->pending();
          f.delivered = receivers[i]->packets_received();
          f.acks_emitted = receivers[i]->packets_received();
          if (ack_stages[i] != nullptr) {
            const ImpairmentCounters& c = ack_stages[i]->counters();
            f.ack_stage_dropped = c.dropped;
            f.ack_stage_duplicated = c.duplicated;
            f.ack_stage_pending = ack_stages[i]->pending();
          }
          f.rev_pending = rev_lines[i]->pending();
          f.acks_received = senders[i]->acks_received();
          f.cwnd = senders[i]->cc().cwnd();
          f.pacing_rate = senders[i]->cc().pacing_rate();
          f.srtt = senders[i]->smoothed_rtt();
          f.base_rtt = scenario.flows[i].base_rtt;
          f.cum_next = receivers[i]->cumulative_next();
          f.delivered_bytes = senders[i]->delivered_bytes();
          f.retransmits = senders[i]->retransmit_count();
          f.rtos = senders[i]->rto_count();
          flow_bytes_sum += link.queue().flow_occupancy(i);
          if (recorder != nullptr) {
            recorder->note(t, FlightEventKind::kCcSnapshot, i,
                           static_cast<std::uint64_t>(f.cwnd),
                           f.srtt == kTimeNone
                               ? ~std::uint64_t{0}
                               : static_cast<std::uint64_t>(f.srtt));
          }
        }
        smp.queue_flow_bytes_sum = flow_bytes_sum;
        if (audit_p->check()) {
          if (recorder != nullptr) {
            recorder->note(t, FlightEventKind::kViolation, 0,
                           audit_p->violations().size());
          }
          // Stop promptly: the ledger is already inconsistent, so further
          // simulation adds noise, not information.
          sim.stop();
        }
      });
    }
  }

  // Begin measurement after warm-up.
  Bytes served_at_warmup = 0;
  sim.schedule_at(scenario.warmup, [&] {
    link.queue().begin_measurement(sim.now());
    for (auto& s : senders) s->begin_measurement();
    served_at_warmup = link.bytes_served();
  });

  // Watchdog-sliced run loop. Slicing is observationally identical to one
  // run_until(duration) call — no event is added or reordered — it only
  // creates safe points to stop at.
  sim.set_event_budget(watchdog.max_events);
  const auto wall_start = std::chrono::steady_clock::now();
  const TimeNs slice = from_ms(500);
  for (TimeNs t = 0; t < scenario.duration;) {
    t = std::min<TimeNs>(t + slice, scenario.duration);
    sim.run_until(t);
    if (chaos_wall_stall) {
      // One-time injected wall stall: sleep past the watchdog deadline so
      // the wall-clock backstop below must fire.
      chaos_wall_stall = false;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          watchdog.max_wall_seconds * 1.25 + 0.05));
    }
    if (audit_p != nullptr && audit_p->violated()) {
      out.status = RunStatus::kInvariantViolation;
      out.diagnostics.message = audit_p->first_violation();
      break;
    }
    if (sim.budget_exhausted()) {
      out.status = RunStatus::kAbortedEventBudget;
      // Live backlog only: the budget itself counts *executed* events and
      // size() excludes lazily-cancelled corpses, so cancellation-heavy
      // CCAs neither trip the watchdog early nor inflate this report.
      out.diagnostics.message =
          "watchdog: event budget of " + std::to_string(watchdog.max_events) +
          " exhausted at simulated t=" + std::to_string(sim.now()) + " ns (" +
          std::to_string(sim.pending_events()) + " live events pending)";
      break;
    }
    if (watchdog.max_wall_seconds > 0.0) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (wall > watchdog.max_wall_seconds) {
        out.status = RunStatus::kAbortedWallClock;
        out.diagnostics.message =
            "watchdog: wall-clock limit of " +
            std::to_string(watchdog.max_wall_seconds) +
            " s exceeded at simulated t=" + std::to_string(sim.now()) + " ns";
        break;
      }
    }
  }

  // Collect. Aborted runs yield partial measurements (diagnostics only).
  link.queue().finalize(sim.now());
  const double window_sec =
      to_sec(std::max<TimeNs>(0, sim.now() - scenario.warmup));

  RunResult& res = out.result;
  res.flows.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FlowResult fr;
    fr.cc = scenario.flows[i].cc;
    fr.base_rtt = scenario.flows[i].base_rtt;

    const Sender& s = *senders[i];
    FlowStats st;
    st.goodput_bps =
        window_sec > 0.0
            ? static_cast<double>(s.delivered_bytes() -
                                  s.delivered_at_measurement_start()) /
                  window_sec
            : 0.0;
    st.avg_rtt_ms = s.rtt_stats().mean();
    st.min_rtt_ms = s.rtt_stats().min();
    st.max_rtt_ms = s.rtt_stats().max();
    st.retransmits = s.retransmit_count() - s.retransmits_at_measurement_start();
    st.rtos = s.rto_count() - s.rtos_at_measurement_start();
    st.avg_inflight_bytes = s.avg_inflight_bytes();
    st.completed_at = s.completed_at();
    st.avg_queue_occupancy_bytes = link.queue().avg_flow_occupancy(i);
    st.min_queue_occupancy_bytes = link.queue().min_flow_occupancy(i);
    st.max_queue_occupancy_bytes = link.queue().max_flow_occupancy(i);
    fr.stats = st;
    res.flows.push_back(fr);
  }

  res.avg_queue_bytes = link.queue().avg_occupied_bytes();
  res.avg_queue_delay_ms = to_ms(static_cast<TimeNs>(
      res.avg_queue_bytes / scenario.capacity * kNsPerSec));
  res.link_utilization =
      window_sec > 0.0
          ? static_cast<double>(link.bytes_served() - served_at_warmup) /
                (scenario.capacity * window_sec)
          : 0.0;
  res.total_drops = link.queue().total_drops();

  if (!cubic_ids.empty()) {
    res.cubic_buffer_avg = link.queue().group_avg_occupancy();
    res.cubic_buffer_min = link.queue().group_min_occupancy();
    res.cubic_buffer_max = link.queue().group_max_occupancy();
  }
  double noncubic_avg = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (scenario.flows[i].cc != CcKind::kCubic) {
      noncubic_avg += link.queue().avg_flow_occupancy(i);
    }
  }
  res.noncubic_buffer_avg = noncubic_avg;

  for (std::uint32_t i = 0; i < n; ++i) {
    if (data_stages[i] != nullptr) {
      const ImpairmentCounters& c = data_stages[i]->counters();
      res.data_impairments.offered += c.offered;
      res.data_impairments.dropped += c.dropped;
      res.data_impairments.duplicated += c.duplicated;
      res.data_impairments.reordered += c.reordered;
    }
    if (ack_stages[i] != nullptr) {
      const ImpairmentCounters& c = ack_stages[i]->counters();
      res.ack_impairments.offered += c.offered;
      res.ack_impairments.dropped += c.dropped;
      res.ack_impairments.duplicated += c.duplicated;
      res.ack_impairments.reordered += c.reordered;
    }
  }

  out.diagnostics.events_executed = sim.events_executed();
  out.diagnostics.pending_events = sim.pending_events();  // live count
  out.diagnostics.sim_time_reached = sim.now();

  // End-of-run audit: per-flow goodput bounded by the peak bottleneck rate.
  if (audit_p != nullptr && out.status == RunStatus::kOk) {
    const double peak_bps = scenario.peak_capacity();
    for (std::uint32_t i = 0; i < n; ++i) {
      audit_p->check_final_goodput(i, res.flows[i].stats.goodput_bps,
                                   peak_bps);
    }
    if (audit_p->violated()) {
      out.status = RunStatus::kInvariantViolation;
      out.diagnostics.message = audit_p->first_violation();
    }
  }

  // Always-on invariant guards (promoted from test-only assertions).
  // Checked only for runs that completed: an aborted run is legitimately
  // partial and already carries its own diagnosis.
  if (out.status == RunStatus::kOk) {
    std::string violations;
    const auto add = [&violations](const std::string& v) {
      if (!violations.empty()) violations += "; ";
      violations += v;
    };
    const double peak_mbps = to_mbps(scenario.peak_capacity());
    const double total_mbps = res.total_goodput_all_mbps();
    if (total_mbps > peak_mbps * 1.05 + 1e-9) {
      add(format_bytes_violation(
          "conservation: sum of goodputs exceeds peak capacity (Mbps)",
          total_mbps, peak_mbps * 1.05));
    }
    if (link.queue().max_occupied_bytes() > scenario.buffer_bytes) {
      add(format_bytes_violation(
          "queue bound: occupancy exceeded the configured buffer (bytes)",
          static_cast<double>(link.queue().max_occupied_bytes()),
          static_cast<double>(scenario.buffer_bytes)));
    }
    if (sim.now() != scenario.duration) {
      add(format_bytes_violation(
          "clock: completed run did not reach the scenario duration (ns)",
          static_cast<double>(sim.now()),
          static_cast<double>(scenario.duration)));
    }
    if (!violations.empty()) {
      out.status = RunStatus::kInvariantViolation;
      out.diagnostics.message = violations;
    }
  }
  return out;
}

}  // namespace

namespace {

/// Per-attempt flight recorder, created only when the scenario asks for one.
std::unique_ptr<FlightRecorder> make_recorder(const Scenario& scenario) {
  if (scenario.audit.recorder_events == 0) return nullptr;
  return std::make_unique<FlightRecorder>(scenario.audit.recorder_events,
                                          scenario.audit.recorder_path);
}

}  // namespace

RunResult run_scenario(const Scenario& scenario) {
  scenario.validate();
  std::unique_ptr<FlightRecorder> recorder = make_recorder(scenario);
  ExecOutcome out;
  try {
    out = execute_scenario(scenario, WatchdogConfig{}, nullptr,
                           recorder.get());
  } catch (const std::exception& e) {
    if (recorder != nullptr) recorder->dump("exception", e.what(),
                                            scenario.seed);
    throw;
  }
  if (out.status == RunStatus::kInvariantViolation) {
    if (recorder != nullptr) {
      recorder->dump(to_string(out.status), out.diagnostics.message,
                     scenario.seed);
    }
    throw InvariantViolation{out.diagnostics.message};
  }
  return std::move(out.result);
}

RunOutcome run_scenario_guarded(const Scenario& scenario,
                                const GuardConfig& guard) {
  RunOutcome outcome;
  outcome.seed_used = scenario.seed;
  try {
    scenario.validate();
  } catch (const std::exception& e) {
    // Config errors are not retryable; report them once.
    outcome.status = RunStatus::kError;
    outcome.diagnostics.message = e.what();
    return outcome;
  }

  ChaosInjector* chaos = guard.chaos.get();
  const int max_attempts = std::max(1, guard.max_attempts);
  // Chaos redos are bounded by fire-once-per-site, but cap them anyway so a
  // future fault class that breaks that contract cannot loop forever.
  constexpr int kMaxChaosRedos = 16;
  int chaos_redos = 0;

  Scenario attempt = scenario;
  for (int i = 0; i < max_attempts;) {
    attempt.seed = scenario.seed + static_cast<std::uint64_t>(i) *
                                       guard.seed_bump;
    outcome.attempts = i + 1;
    outcome.seed_used = attempt.seed;
    const bool injected =
        std::find(guard.inject_failure_seeds.begin(),
                  guard.inject_failure_seeds.end(),
                  attempt.seed) != guard.inject_failure_seeds.end();
    if (injected) {
      outcome.status = RunStatus::kInvariantViolation;
      outcome.diagnostics = RunDiagnostics{};
      outcome.diagnostics.message =
          "injected failure for seed " + std::to_string(attempt.seed);
      ++i;
      continue;
    }
    std::unique_ptr<FlightRecorder> recorder = make_recorder(attempt);
    // Chaos faults are environmental (the experiment seed did nothing
    // wrong), so the attempt is redone with the SAME seed and without
    // consuming a retry: recovered outcomes — including the attempts
    // counter sweeps aggregate into trials_retried — stay bit-identical to
    // a fault-free run. Termination: each chaos site fires at most once.
    bool chaos_redo = false;
    try {
      const auto wall_start = std::chrono::steady_clock::now();
      ExecOutcome exec =
          execute_scenario(attempt, guard.watchdog, chaos, recorder.get());
      outcome.status = exec.status;
      outcome.result = std::move(exec.result);
      outcome.diagnostics = std::move(exec.diagnostics);
      outcome.diagnostics.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      chaos_redo =
          exec.status != RunStatus::kOk && exec.chaos_injected;
    } catch (const ChaosFault& e) {
      outcome.status = RunStatus::kError;
      outcome.diagnostics = RunDiagnostics{};
      outcome.diagnostics.message = e.what();
      chaos_redo = true;
    } catch (const std::exception& e) {
      outcome.status = RunStatus::kError;
      outcome.diagnostics = RunDiagnostics{};
      outcome.diagnostics.message = e.what();
    }
    if (!outcome.ok() && recorder != nullptr) {
      recorder->dump(outcome.status == RunStatus::kError
                         ? "exception"
                         : to_string(outcome.status),
                     outcome.diagnostics.message, attempt.seed);
    }
    if (chaos_redo && chaos_redos < kMaxChaosRedos) {
      ++chaos_redos;
      continue;  // same seed, same attempt index
    }
    if (outcome.ok()) break;
    ++i;
  }
  return outcome;
}

}  // namespace bbrnash
