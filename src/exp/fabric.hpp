// Crash-tolerant multi-process sweep fabric.
//
// PR 2's TrialPool parallelises sweep cells across *threads*; one crashed
// or wedged process still loses the whole run. The fabric moves the unit
// of failure to the process: a supervisor forks N workers, hands each a
// sweep cell over a pipe, and tracks progress through **lease records**
// appended to the same crash-safe JSONL checkpoint log the in-process
// sweeps use — the log stays the single coordination *and* resume
// substrate.
//
// Lease protocol (all records written by the supervisor, so the log keeps
// its single-writer whole-line append guarantee):
//
//   claim      the cell was assigned to worker W (pid P, claim epoch E)
//   heartbeat  W is alive and still computing the cell (throttled to one
//              record per lease period)
//   expired    the lease was revoked: the worker exited, was signalled,
//              or its heartbeat went stale past the lease deadline
//   commit     the cell's MixOutcome record was appended (the ordinary
//              checkpoint record IS the commit; the lease record marks it)
//
// A lease with a stale heartbeat is expired and its cell reassigned; a
// resumed supervisor treats every claim without a commit as stale (the
// previous process is dead by definition) and simply re-runs those cells.
//
// Failure handling is the headline:
//   * worker exit/crash is detected via waitpid, hang via the heartbeat
//     deadline (the worker heartbeats from a side thread while the cell
//     simulates);
//   * a lost cell is reassigned with bounded per-cell retries and
//     exponential backoff;
//   * a dead worker slot is respawned up to a budget, after which the
//     pool shrinks and the run finishes on the survivors;
//   * when no workers survive, the run returns a typed partial outcome
//     (per-cell results + failed-cell list) instead of aborting;
//   * every abnormal worker end appends a `bbrnash-fabric-v1` incident
//     record (flight-recorder style post-mortem).
//
// Determinism: a cell's numbers are a pure function of (net, cell, trial
// config) — per-trial seeds derive from (config, trial index), and
// MixOutcome round-trips through the checkpoint encoding bit-exactly — so
// ANY claim/crash/reassignment schedule yields results bit-identical to a
// single-process run. The chaos drills (worker SIGKILL mid-cell, worker
// heartbeat stall, supervisor crash-before-commit) assert exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/congestion_control.hpp"
#include "exp/nash_search.hpp"
#include "exp/sweeps.hpp"
#include "model/network_params.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {

class ChaosInjector;

/// One sweep cell: a (num_cubic x CUBIC) vs (num_other x challenger) mix.
struct FabricCell {
  int num_cubic = 0;
  int num_other = 0;
};

struct FabricConfig {
  /// Worker processes to fork (>= 1; capped to the number of cells).
  int workers = 2;
  /// Heartbeat deadline: a leased cell whose worker has not heartbeat for
  /// this long is considered hung; the worker is killed and the cell
  /// reassigned. Workers heartbeat at a quarter of this period.
  double lease_ms = 2000.0;
  /// Reassignments allowed per cell before it is marked failed.
  int max_worker_retries = 3;
  /// Respawns allowed per worker slot before the slot is retired and the
  /// pool shrinks ("workers keep dying" degradation).
  int max_worker_respawns = 3;
  /// First reassignment backoff; doubles per retry, capped at 2 s.
  double backoff_base_ms = 50.0;
  /// Coordination + resume substrate. Empty = a fresh file under the
  /// system temp directory (no resume across runs, still crash-safe).
  std::string checkpoint_path;
  /// `bbrnash-fabric-v1` incident records (one per abnormal worker end).
  /// Empty = "<checkpoint_path>.incidents.jsonl".
  std::string incident_path;
  /// Process-level chaos (drills). The supervisor arms at most one fault
  /// per assignment, in priority order kill > hang, and fire-once per
  /// (class, cell) bookkeeping guarantees convergence; crash-before-commit
  /// is armed at commit time. All decisions are made in the supervisor so
  /// a reassigned cell is never re-faulted by a fresh process's injector.
  std::shared_ptr<ChaosInjector> chaos;
  bool chaos_worker_kill = true;      ///< eligible: SIGKILL mid-cell
  bool chaos_worker_hang = true;      ///< eligible: heartbeat stall
  bool chaos_supervisor_crash = true; ///< eligible: crash before commit
};

enum class FabricStatus {
  kComplete,          ///< every cell has a measurement
  kPartial,           ///< some cells failed permanently; survivors reported
  kInterrupted,       ///< SIGINT/SIGTERM: committed cells flushed, resumable
  kSupervisorCrashed, ///< chaos crash-before-commit: re-run to resume
};

[[nodiscard]] const char* to_string(FabricStatus status);

/// Per-worker-slot counters (slot = logical worker id; a respawned process
/// keeps its slot).
struct FabricWorkerStats {
  int worker = 0;
  std::uint64_t spawns = 0;          ///< processes forked for this slot
  std::uint64_t cells_claimed = 0;
  std::uint64_t cells_committed = 0;
  std::uint64_t leases_expired = 0;  ///< claims revoked from this slot
};

struct FabricStats {
  std::vector<FabricWorkerStats> workers;
  std::uint64_t cells_total = 0;
  std::uint64_t cells_from_checkpoint = 0;  ///< resumed, not re-run
  std::uint64_t cells_committed = 0;        ///< computed this run
  std::uint64_t cells_failed = 0;
  std::uint64_t cells_reassigned = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t worker_deaths = 0;   ///< exits/signals noticed via waitpid
  std::uint64_t worker_hangs = 0;    ///< heartbeat-deadline expiries
  std::uint64_t worker_respawns = 0;
  std::uint64_t workers_retired = 0; ///< slots whose respawn budget ran out
  std::uint64_t retries_exhausted = 0;
  std::uint64_t supervisor_crashes = 0;  ///< chaos crash-before-commit
  std::uint64_t incidents = 0;       ///< bbrnash-fabric-v1 records written
  std::size_t checkpoint_skipped_lines = 0;  ///< torn lines on replay
  double backoff_seconds_total = 0.0;
  double wall_seconds = 0.0;
  double cells_per_second = 0.0;     ///< committed cells / wall_seconds
};

/// Flat `bbrnash-fabric-stats-v1` record (--fabric-stats). The schema is
/// pinned by tests/exp/test_fabric.cpp; extend it, don't mutate it.
[[nodiscard]] JsonlRecord fabric_stats_to_record(const FabricStats& stats);

struct [[nodiscard]] FabricOutcome {
  FabricStatus status = FabricStatus::kComplete;
  /// Aligned with the input cells; nullopt = failed permanently (or not
  /// reached before an interrupt/crash).
  std::vector<std::optional<MixOutcome>> cells;
  std::vector<std::size_t> failed_cells;  ///< indices with no measurement
  std::string message;                    ///< non-empty unless kComplete
  FabricStats stats;

  [[nodiscard]] bool complete() const noexcept {
    return status == FabricStatus::kComplete;
  }
};

/// Runs every cell across `fabric.workers` forked worker processes.
/// Results are reduced into `cells` slots by index, so the returned
/// numbers are bit-identical to a serial run_mix_trials loop regardless
/// of the claim/crash schedule. Throws std::invalid_argument for an
/// ill-formed config; process-level failures never throw — they degrade
/// into the typed outcome.
[[nodiscard]] FabricOutcome run_fabric_cells(const NetworkParams& net,
                                             const std::vector<FabricCell>& cells,
                                             CcKind challenger,
                                             const TrialConfig& trial,
                                             const FabricConfig& fabric);

struct [[nodiscard]] FabricSweepOutcome {
  FabricStatus status = FabricStatus::kComplete;
  EmpiricalPayoffs payoffs;     ///< zero rows for failed cells
  std::vector<int> failed_k;    ///< k values without a measurement
  std::string message;
  FabricStats stats;

  [[nodiscard]] bool complete() const noexcept {
    return status == FabricStatus::kComplete;
  }
};

/// The full payoff grid k = 0..total_flows (measure_payoffs' cells) on the
/// fabric. A complete outcome's payoffs are bit-identical to
/// measure_payoffs(net, total_flows, cfg) with the same trial config.
[[nodiscard]] FabricSweepOutcome run_fabric_sweep(const NetworkParams& net,
                                                  int total_flows,
                                                  const NashSearchConfig& cfg,
                                                  const FabricConfig& fabric);

}  // namespace bbrnash
