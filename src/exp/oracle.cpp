#include "exp/oracle.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "exp/cli_flags.hpp"
#include "model/mishra_model.hpp"
#include "model/model_band.hpp"
#include "util/jsonl.hpp"
#include "util/schemas.hpp"

namespace bbrnash {

const char* to_string(OracleFidelity f) {
  switch (f) {
    case OracleFidelity::kExact: return "exact";
    case OracleFidelity::kInterpolated: return "interpolated";
    case OracleFidelity::kModelOnly: return "model-only";
  }
  return "?";
}

const char* to_string(OracleStatus s) {
  switch (s) {
    case OracleStatus::kOk: return "ok";
    case OracleStatus::kPending: return "pending";
    case OracleStatus::kFailed: return "failed";
  }
  return "?";
}

std::string oracle_key(const OracleQuery& q) {
  return mix_checkpoint_key(q.net, q.num_cubic, q.num_other, q.challenger,
                            q.trial);
}

std::optional<MixKeyAxes> parse_mix_key_axes(const std::string& key) {
  if (key.rfind("mix ", 0) != 0 || is_lease_key(key)) return std::nullopt;
  MixKeyAxes axes;
  axes.base.reserve(key.size());
  axes.base = "mix";
  bool have_b = false;
  bool have_nc = false;
  bool have_no = false;
  std::size_t pos = 4;  // past "mix "
  while (pos < key.size()) {
    std::size_t end = key.find(' ', pos);
    if (end == std::string::npos) end = key.size();
    const std::string token = key.substr(pos, end - pos);
    pos = end + 1;
    const auto grab = [&token](const char* prefix) -> std::optional<std::string> {
      const std::size_t n = std::string_view{prefix}.size();
      if (token.rfind(prefix, 0) != 0) return std::nullopt;
      return token.substr(n);
    };
    try {
      if (const auto v = grab("b=")) {
        const std::uint64_t raw = parse_u64_strict("key b", *v);
        if (raw > static_cast<std::uint64_t>(
                      std::numeric_limits<Bytes>::max())) {
          return std::nullopt;
        }
        axes.buffer = static_cast<Bytes>(raw);
        have_b = true;
        continue;
      }
      if (const auto v = grab("nc=")) {
        axes.num_cubic = parse_int_strict("key nc", *v);
        have_nc = true;
        continue;
      }
      if (const auto v = grab("no=")) {
        axes.num_other = parse_int_strict("key no", *v);
        have_no = true;
        continue;
      }
    } catch (const std::invalid_argument&) {
      // A corrupt axis field (e.g. "nc=3x") disqualifies the record from
      // the lattice — the oracle must never interpolate from garbage.
      return std::nullopt;
    }
    axes.base += ' ';
    axes.base += token;
  }
  if (!have_b || !have_nc || !have_no) return std::nullopt;
  return axes;
}

std::optional<MixOutcome> model_only_outcome(const NetworkParams& net,
                                             int num_cubic, int num_bbr,
                                             double duration_sec) {
  (void)duration_sec;  // reserved for a future Ware-weighted blend
  if (num_cubic < 1 || num_bbr < 1) return std::nullopt;
  const auto iv = prediction_interval(net, num_cubic, num_bbr);
  if (!iv) return std::nullopt;
  const auto mid = [](double a, double b) { return 0.5 * (a + b); };
  const MishraPrediction& s = iv->sync.aggregate;
  const MishraPrediction& d = iv->desync.aggregate;
  MixOutcome m;
  m.per_flow_cubic_mbps =
      to_mbps(mid(iv->sync.per_flow_cubic, iv->desync.per_flow_cubic));
  m.per_flow_other_mbps =
      to_mbps(mid(iv->sync.per_flow_bbr, iv->desync.per_flow_bbr));
  m.total_cubic_mbps = to_mbps(mid(s.lambda_cubic, d.lambda_cubic));
  m.total_other_mbps = to_mbps(mid(s.lambda_bbr, d.lambda_bbr));
  m.link_utilization = (mid(s.lambda_cubic, d.lambda_cubic) +
                        mid(s.lambda_bbr, d.lambda_bbr)) /
                       net.capacity;
  // The model's buffer-always-full assumption pins the standing queue.
  m.avg_queue_delay_ms =
      1e3 * static_cast<double>(net.buffer_bytes) / net.capacity;
  const auto buffer = static_cast<double>(net.buffer_bytes);
  m.cubic_buffer_avg =
      mid(buffer - s.bbr_buffer_bytes, buffer - d.bbr_buffer_bytes);
  m.cubic_buffer_min = mid(s.cubic_min_buffer, d.cubic_min_buffer);
  m.noncubic_buffer_avg = mid(s.bbr_buffer_bytes, d.bbr_buffer_bytes);
  // trials_* stay 0: no simulation ran, and the differential suite relies
  // on the 0/0 signature to tell a model answer from an empirical one.
  return m;
}

namespace {

/// True when the closed forms describe this cell: a BBR challenger on a
/// pristine constant-rate path (the model's assumptions).
bool model_applies(const OracleQuery& q) {
  return q.challenger == CcKind::kBbr && q.num_cubic >= 1 &&
         q.num_other >= 1 && !q.trial.impairments.any() &&
         !q.trial.ack_impairments.any() && q.trial.capacity_schedule.empty();
}

JsonlRecord oracle_record(const MixOutcome& m) {
  JsonlRecord rec = mix_to_record(m);
  rec.set("schema", kSchemaOracle);
  return rec;
}

/// The key with its nc=/no= fields elided: misses sharing a compute group
/// differ only in the mix, which is exactly what one run_fabric_cells call
/// sweeps.
std::string compute_group_key(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  std::size_t pos = 0;
  while (pos < key.size()) {
    std::size_t end = key.find(' ', pos);
    if (end == std::string::npos) end = key.size();
    const std::string_view token{key.data() + pos, end - pos};
    if (token.rfind("nc=", 0) != 0 && token.rfind("no=", 0) != 0) {
      if (!out.empty()) out += ' ';
      out += token;
    }
    pos = end + 1;
  }
  return out;
}

}  // namespace

PayoffOracle::PayoffOracle(OracleConfig cfg) : cfg_(std::move(cfg)) {
  // Hydrate side files first, the oracle's own cache last: on a key served
  // by both, the entry this oracle wrote previously is authoritative.
  for (const std::string& path : cfg_.hydrate_paths) {
    hydrate_file(path, /*warn_on_skip=*/true);
  }
  if (!cfg_.cache_path.empty()) {
    hydrate_file(cfg_.cache_path, /*warn_on_skip=*/false);
    // CheckpointLog replays the file again (cheap) and warns about torn
    // lines itself; it owns all appends from here on.
    log_ = std::make_unique<CheckpointLog>(cfg_.cache_path);
  }
}

void PayoffOracle::hydrate_file(const std::string& path, bool warn_on_skip) {
  std::size_t skipped = 0;
  const std::vector<JsonlRecord> records = read_jsonl(path, &skipped);
  std::uint64_t loaded = 0;
  for (const JsonlRecord& rec : records) {
    const std::string key = rec.get_string("key");
    // Lease bookkeeping and foreign records never become answers.
    if (key.rfind("mix", 0) != 0 || is_lease_key(key)) continue;
    insert_locked(key, mix_from_record(rec));
    ++loaded;
  }
  stats_.hydrated_cells += loaded;
  stats_.hydrate_skipped_lines += skipped;
  if (warn_on_skip && skipped > 0) {
    std::fprintf(stderr,
                 "oracle: skipped %zu unparseable line(s) hydrating %s\n",
                 skipped, path.c_str());
  }
}

void PayoffOracle::insert_locked(const std::string& key, const MixOutcome& m) {
  memo_[key] = m;
  const auto axes = parse_mix_key_axes(key);
  if (!axes) return;  // exact-hit only; no lattice point from odd keys
  std::vector<LatticePoint>& group = lattice_[axes->base];
  for (LatticePoint& p : group) {
    if (p.buffer == axes->buffer && p.num_cubic == axes->num_cubic &&
        p.num_other == axes->num_other) {
      p.key = key;  // refreshed entry (last-write-wins, like the memo)
      return;
    }
  }
  group.push_back(
      LatticePoint{axes->buffer, axes->num_cubic, axes->num_other, key});
}

std::optional<MixOutcome> PayoffOracle::try_interpolate_locked(
    const OracleQuery& q, const MixKeyAxes& axes) {
  const auto git = lattice_.find(axes.base);
  if (git == lattice_.end()) return std::nullopt;
  const std::vector<LatticePoint>& group = git->second;

  // Nearest lattice neighbours per axis. A zero flow count is a different
  // regime, not a small value: per-flow throughput of an absent class is
  // identically 0, so blending an N=0 corner into an N>0 query would
  // fabricate numbers. N>0 queries only accept N>=1 corners; N==0 queries
  // require the axis to collapse at exactly 0.
  struct Axis {
    double lo = 0.0, hi = 0.0;
    bool found_lo = false, found_hi = false;
  };
  Axis ax[3];
  const double qv[3] = {static_cast<double>(q.net.buffer_bytes),
                        static_cast<double>(q.num_cubic),
                        static_cast<double>(q.num_other)};
  for (const LatticePoint& p : group) {
    if ((q.num_cubic == 0) != (p.num_cubic == 0)) continue;
    if ((q.num_other == 0) != (p.num_other == 0)) continue;
    const double pv[3] = {static_cast<double>(p.buffer),
                          static_cast<double>(p.num_cubic),
                          static_cast<double>(p.num_other)};
    for (int a = 0; a < 3; ++a) {
      if (pv[a] <= qv[a] && (!ax[a].found_lo || pv[a] > ax[a].lo)) {
        ax[a].lo = pv[a];
        ax[a].found_lo = true;
      }
      if (pv[a] >= qv[a] && (!ax[a].found_hi || pv[a] < ax[a].hi)) {
        ax[a].hi = pv[a];
        ax[a].found_hi = true;
      }
    }
  }
  for (const Axis& a : ax) {
    // Bounded: a missing side means the query sits outside the cached
    // hull on that axis — refuse rather than extrapolate.
    if (!a.found_lo || !a.found_hi) return std::nullopt;
  }

  // Collect the corner cells of the bounding box. Collapsed axes (lo ==
  // hi) contribute one coordinate; the corner count is 2^(free axes).
  const auto corner_at = [&](double b, double c,
                             double o) -> const MixOutcome* {
    for (const LatticePoint& p : group) {
      if (static_cast<double>(p.buffer) == b &&
          static_cast<double>(p.num_cubic) == c &&
          static_cast<double>(p.num_other) == o) {
        const auto mit = memo_.find(p.key);
        return mit == memo_.end() ? nullptr : &mit->second;
      }
    }
    return nullptr;
  };

  MixOutcome blend;
  double weight_sum = 0.0;
  for (int mask = 0; mask < 8; ++mask) {
    double coord[3];
    double w = 1.0;
    bool dup = false;
    for (int a = 0; a < 3; ++a) {
      const bool high = (mask & (1 << a)) != 0;
      if (ax[a].lo == ax[a].hi) {
        if (high) dup = true;  // collapsed axis: count the corner once
        coord[a] = ax[a].lo;
        continue;
      }
      const double t = (qv[a] - ax[a].lo) / (ax[a].hi - ax[a].lo);
      coord[a] = high ? ax[a].hi : ax[a].lo;
      w *= high ? t : (1.0 - t);
    }
    if (dup) continue;
    const MixOutcome* cell = corner_at(coord[0], coord[1], coord[2]);
    // Every corner must exist and carry real data; a failed cell (zero
    // completed trials) has nothing to contribute.
    if (cell == nullptr || cell->trials_completed == 0) return std::nullopt;
    blend.per_flow_cubic_mbps += w * cell->per_flow_cubic_mbps;
    blend.per_flow_other_mbps += w * cell->per_flow_other_mbps;
    blend.total_cubic_mbps += w * cell->total_cubic_mbps;
    blend.total_other_mbps += w * cell->total_other_mbps;
    blend.avg_queue_delay_ms += w * cell->avg_queue_delay_ms;
    blend.link_utilization += w * cell->link_utilization;
    blend.cubic_buffer_avg += w * cell->cubic_buffer_avg;
    blend.cubic_buffer_min += w * cell->cubic_buffer_min;
    blend.noncubic_buffer_avg += w * cell->noncubic_buffer_avg;
    weight_sum += w;
  }
  // Weights of a multilinear blend sum to 1 by construction; anything else
  // means a corner was skipped above.
  if (weight_sum <= 0.0) return std::nullopt;
  // trials_* stay 0: the blend is not an empirical measurement.
  return blend;
}

OracleAnswer PayoffOracle::answer_miss(const OracleQuery& q,
                                       const std::string& key) {
  OracleAnswer ans;
  ans.key = key;
  if (cfg_.no_compute) {
    return answer_without_compute(q, "no-compute");
  }

  // Tier 3: genuinely compute the cell, then memoize + persist. The
  // numbers are a pure function of the key, so a racing thread computing
  // the same cell writes the same bits.
  MixOutcome m;
  if (cfg_.fabric_workers >= 1) {
    FabricConfig fab = cfg_.fabric;
    fab.workers = cfg_.fabric_workers;
    if (fab.checkpoint_path.empty() && !cfg_.cache_path.empty()) {
      fab.checkpoint_path = cfg_.cache_path + ".fabric.jsonl";
    }
    const FabricOutcome out = run_fabric_cells(
        q.net, {FabricCell{q.num_cubic, q.num_other}}, q.challenger, q.trial,
        fab);
    if (out.cells.size() != 1 || !out.cells[0].has_value()) {
      ans.status = OracleStatus::kFailed;
      ans.message = out.message.empty() ? "fabric returned no measurement"
                                        : out.message;
      const std::lock_guard<std::mutex> lk{mu_};
      ++stats_.failed;
      return ans;
    }
    m = *out.cells[0];
  } else {
    m = run_mix_trials(q.net, q.num_cubic, q.num_other, q.challenger,
                       q.trial);
  }

  if (log_) log_->record(key, oracle_record(m));
  {
    const std::lock_guard<std::mutex> lk{mu_};
    insert_locked(key, m);
    ++stats_.computed;
    if (m.trials_completed == 0) ++stats_.failed;
  }
  ans.outcome = m;
  ans.fidelity = OracleFidelity::kExact;
  if (m.trials_completed == 0) {
    // Every trial failed: diagnostics, not numbers. The record is still
    // persisted (so a resumed oracle reports the same failure instantly).
    ans.status = OracleStatus::kFailed;
    ans.message = m.failures.empty() ? "no completed trials"
                                     : m.failures.front();
  } else {
    ans.status = OracleStatus::kOk;
  }
  return ans;
}

// The tier-1 answer body, shared by every path that serves the memo.
static OracleAnswer exact_answer_from_memo(const std::string& key,
                                           const MixOutcome& m) {
  OracleAnswer ans;
  ans.key = key;
  ans.fidelity = OracleFidelity::kExact;
  ans.outcome = m;
  if (m.trials_completed == 0 && m.trials_failed > 0) {
    ans.status = OracleStatus::kFailed;
    ans.message = m.failures.empty() ? "cached cell has no completed trials"
                                     : m.failures.front();
  } else {
    ans.status = OracleStatus::kOk;
  }
  return ans;
}

std::optional<OracleAnswer> PayoffOracle::cached_tiers_locked(
    const OracleQuery& q, const std::string& key) {
  // Tier 1: exact memo hit.
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++stats_.exact_hits;
    return exact_answer_from_memo(key, it->second);
  }

  // Tier 2: bounded multilinear interpolation + closed-form cross-check.
  if (cfg_.allow_interpolation) {
    const auto axes = parse_mix_key_axes(key);
    if (axes) {
      const auto blend = try_interpolate_locked(q, *axes);
      if (!blend) {
        ++stats_.interp_no_bounds;
      } else {
        OracleAnswer ans;
        ans.key = key;
        ans.fidelity = OracleFidelity::kInterpolated;
        ans.outcome = *blend;
        ans.status = OracleStatus::kOk;
        bool reject = false;
        if (model_applies(q)) {
          const auto band = model_band(q.net, q.num_cubic, q.num_other,
                                       to_sec(q.trial.duration));
          if (band) {
            ans.band_deviation =
                band_deviation(*band, mbps(blend->per_flow_cubic_mbps),
                               mbps(blend->per_flow_other_mbps));
            reject = ans.band_deviation > cfg_.max_band_deviation;
          }
        }
        if (!reject) {
          ++stats_.interpolated;
          return ans;
        }
        ++stats_.interp_band_rejected;
      }
    }
  }
  return std::nullopt;
}

OracleAnswer PayoffOracle::query(const OracleQuery& q) {
  const std::string key = oracle_key(q);
  {
    const std::lock_guard<std::mutex> lk{mu_};
    ++stats_.queries;
    const auto cached = cached_tiers_locked(q, key);
    if (cached) return *cached;
  }
  // Tier 3 (outside the lock: it may run the simulator for a while).
  return answer_miss(q, key);
}

std::optional<OracleAnswer> PayoffOracle::query_cached(const OracleQuery& q) {
  const std::string key = oracle_key(q);
  const std::lock_guard<std::mutex> lk{mu_};
  const auto cached = cached_tiers_locked(q, key);
  // A miss does not count as a query here: the caller is still deciding
  // what the miss becomes (compute / shed / pending), and that path will
  // do its own accounting.
  if (cached) ++stats_.queries;
  return cached;
}

OracleAnswer PayoffOracle::query_compute(const OracleQuery& q) {
  const std::string key = oracle_key(q);
  {
    const std::lock_guard<std::mutex> lk{mu_};
    ++stats_.queries;
    // A racing request may have landed the cell while this one sat in a
    // compute queue; serve the memo rather than re-running the simulator.
    // (Interpolation is deliberately NOT consulted here: the caller queued
    // this query because it wants the empirical cell.)
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_.exact_hits;
      return exact_answer_from_memo(key, it->second);
    }
  }
  return answer_miss(q, key);
}

OracleAnswer PayoffOracle::answer_without_compute(const OracleQuery& q,
                                                 const std::string& reason) {
  OracleAnswer ans;
  ans.key = oracle_key(q);
  if (cfg_.allow_model && model_applies(q)) {
    const auto m = model_only_outcome(q.net, q.num_cubic, q.num_other,
                                      to_sec(q.trial.duration));
    if (m) {
      ans.status = OracleStatus::kOk;
      ans.fidelity = OracleFidelity::kModelOnly;
      ans.outcome = *m;
      ans.band_deviation = 0.0;  // the answer IS the model midpoint
      const std::lock_guard<std::mutex> lk{mu_};
      ++stats_.model_only;
      return ans;
    }
  }
  ans.status = OracleStatus::kPending;
  ans.reason = reason;
  if (reason == "shed") {
    ans.message =
        "cell not cached and the daemon shed the request under queue "
        "pressure; retry to re-enter the compute queue";
  } else if (reason == "timeout") {
    ans.message =
        "compute exceeded the request deadline; the cell is still being "
        "materialized — retry to pick up the cached answer";
  } else {
    ans.message =
        "cell not cached and --no-compute forbids scheduling it; drop "
        "--no-compute (or run `bbrnash sweep`) to materialize the cell";
  }
  const std::lock_guard<std::mutex> lk{mu_};
  ++stats_.pending;
  return ans;
}

std::vector<OracleAnswer> PayoffOracle::query_batch(
    const std::vector<OracleQuery>& qs) {
  std::vector<OracleAnswer> answers(qs.size());
  // Pass 1: everything the cache/model can answer, plus the miss list.
  struct Miss {
    std::size_t idx = 0;
    std::string key;
    std::string group;
  };
  std::vector<Miss> misses;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const std::string key = oracle_key(qs[i]);
    bool miss = false;
    {
      const std::lock_guard<std::mutex> lk{mu_};
      miss = memo_.find(key) == memo_.end();
    }
    if (!miss || cfg_.no_compute || cfg_.fabric_workers < 1) {
      // Cheap tiers — or a compute mode where per-cell calls lose nothing.
      answers[i] = query(qs[i]);
      continue;
    }
    // Re-check the cheap tiers through query()'s logic is wasteful here;
    // interpolation may still answer without compute. Probe it by
    // temporarily treating this as a single query with compute deferred.
    misses.push_back(Miss{i, key, compute_group_key(key)});
  }

  // Pass 2: fabric mode — one run per compute group, cells deduplicated.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t m = 0; m < misses.size(); ++m) {
    groups[misses[m].group].push_back(m);
  }
  for (const auto& [group_key, members] : groups) {
    (void)group_key;
    // Interpolation might still answer some members without a fabric trip.
    std::vector<std::size_t> need;
    for (const std::size_t m : members) {
      const OracleQuery& q = qs[misses[m].idx];
      bool answered = false;
      {
        const std::lock_guard<std::mutex> lk{mu_};
        if (cfg_.allow_interpolation) {
          const auto axes = parse_mix_key_axes(misses[m].key);
          if (axes) {
            const auto blend = try_interpolate_locked(q, *axes);
            if (blend) {
              OracleAnswer ans;
              ans.key = misses[m].key;
              ans.fidelity = OracleFidelity::kInterpolated;
              ans.outcome = *blend;
              ans.status = OracleStatus::kOk;
              bool reject = false;
              if (model_applies(q)) {
                const auto band =
                    model_band(q.net, q.num_cubic, q.num_other,
                               to_sec(q.trial.duration));
                if (band) {
                  ans.band_deviation = band_deviation(
                      *band, mbps(blend->per_flow_cubic_mbps),
                      mbps(blend->per_flow_other_mbps));
                  reject = ans.band_deviation > cfg_.max_band_deviation;
                }
              }
              if (!reject) {
                ++stats_.queries;
                ++stats_.interpolated;
                answers[misses[m].idx] = ans;
                answered = true;
              } else {
                ++stats_.interp_band_rejected;
              }
            } else {
              ++stats_.interp_no_bounds;
            }
          }
        }
      }
      if (!answered) need.push_back(m);
    }
    if (need.empty()) continue;

    // One fabric run for the whole group: same net/challenger/trial by
    // construction of the group key, cells differ only in the mix.
    const OracleQuery& q0 = qs[misses[need.front()].idx];
    std::vector<FabricCell> cells;
    std::vector<std::vector<std::size_t>> cell_members;  // dedup by mix
    for (const std::size_t m : need) {
      const OracleQuery& q = qs[misses[m].idx];
      bool found = false;
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (cells[c].num_cubic == q.num_cubic &&
            cells[c].num_other == q.num_other) {
          cell_members[c].push_back(m);
          found = true;
          break;
        }
      }
      if (!found) {
        cells.push_back(FabricCell{q.num_cubic, q.num_other});
        cell_members.push_back({m});
      }
    }
    FabricConfig fab = cfg_.fabric;
    fab.workers = cfg_.fabric_workers;
    if (fab.checkpoint_path.empty() && !cfg_.cache_path.empty()) {
      fab.checkpoint_path = cfg_.cache_path + ".fabric.jsonl";
    }
    const FabricOutcome out =
        run_fabric_cells(q0.net, cells, q0.challenger, q0.trial, fab);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool have = c < out.cells.size() && out.cells[c].has_value();
      if (have) {
        // Record/insert once per cell (members of a cell share one key),
        // and `computed` counts cells actually run — a deduplicated
        // duplicate query must not inflate it.
        const MixOutcome& mo = *out.cells[c];
        const std::string& cell_key = misses[cell_members[c].front()].key;
        if (log_) log_->record(cell_key, oracle_record(mo));
        const std::lock_guard<std::mutex> lk{mu_};
        insert_locked(cell_key, mo);
        ++stats_.computed;
      }
      for (const std::size_t m : cell_members[c]) {
        const std::size_t idx = misses[m].idx;
        OracleAnswer& ans = answers[idx];
        ans.key = misses[m].key;
        const std::lock_guard<std::mutex> lk{mu_};
        ++stats_.queries;
        if (have) {
          const MixOutcome& mo = *out.cells[c];
          ans.outcome = mo;
          ans.fidelity = OracleFidelity::kExact;
          if (mo.trials_completed == 0) {
            ans.status = OracleStatus::kFailed;
            ans.message = mo.failures.empty() ? "no completed trials"
                                              : mo.failures.front();
            ++stats_.failed;
          } else {
            ans.status = OracleStatus::kOk;
          }
        } else {
          ans.status = OracleStatus::kFailed;
          ans.message = out.message.empty() ? "fabric returned no measurement"
                                            : out.message;
          ++stats_.failed;
        }
      }
    }
  }
  return answers;
}

std::vector<std::pair<std::string, MixOutcome>> PayoffOracle::snapshot()
    const {
  const std::lock_guard<std::mutex> lk{mu_};
  std::vector<std::pair<std::string, MixOutcome>> out;
  out.reserve(memo_.size());
  for (const auto& [key, m] : memo_) out.emplace_back(key, m);
  return out;  // std::map iterates sorted by key
}

std::size_t PayoffOracle::cache_size() const {
  const std::lock_guard<std::mutex> lk{mu_};
  return memo_.size();
}

OracleStats PayoffOracle::stats() const {
  const std::lock_guard<std::mutex> lk{mu_};
  return stats_;
}

void PayoffOracle::flush() {
  if (log_) log_->flush();
}

}  // namespace bbrnash
