// Crash-safe sweep checkpoints.
//
// A CheckpointLog is an append-only JSONL file mapping a trial key (a
// string encoding every input that determines the outcome) to its measured
// numbers. Sweeps look a key up before simulating and append after; a
// killed sweep restarted with the same log re-reads the finished cells and
// resumes where it died. Because every double is written with full
// round-trip precision and per-cell seeds are pure functions of the
// configuration, a resumed sweep is numerically identical to an
// uninterrupted one (asserted by tests/exp/test_checkpoint.cpp). A torn
// trailing line from a crash mid-append parses as garbage and is skipped
// on reload — that cell simply re-runs.
#pragma once

#include <map>
#include <string>

#include "cc/congestion_control.hpp"
#include "exp/sweeps.hpp"
#include "model/network_params.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {

class CheckpointLog {
 public:
  /// Opens (and replays) the log at `path`; the file need not exist yet.
  /// On duplicate keys the last record wins, so re-recording a key is
  /// harmless.
  explicit CheckpointLog(std::string path);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// nullptr when the key has not been recorded.
  [[nodiscard]] const JsonlRecord* lookup(const std::string& key) const;
  /// Appends to the file (flushing) and updates the in-memory view.
  void record(const std::string& key, JsonlRecord rec);

 private:
  std::string path_;
  std::map<std::string, JsonlRecord> entries_;
};

/// Key for one run_mix_trials cell: network, mix, trial plan, every knob of
/// both impairment configs (raw Gilbert-Elliott parameters, not the
/// stationary rate), the full capacity schedule (each step's time and
/// rate), and the guard policy (watchdog limits, retries, injected
/// failures). Everything that changes the measured numbers is in here, so
/// one log file can serve a whole multi-dimension sweep.
[[nodiscard]] std::string mix_checkpoint_key(const NetworkParams& net,
                                             int num_cubic, int num_other,
                                             CcKind other,
                                             const TrialConfig& cfg);

[[nodiscard]] JsonlRecord mix_to_record(const MixOutcome& m);
[[nodiscard]] MixOutcome mix_from_record(const JsonlRecord& rec);

/// run_mix_trials with lookup-before-run and record-after-run; a null log
/// degenerates to a plain run_mix_trials call.
MixOutcome run_mix_trials_checkpointed(const NetworkParams& net,
                                       int num_cubic, int num_other,
                                       CcKind other, const TrialConfig& cfg,
                                       CheckpointLog* log);

}  // namespace bbrnash
