// Crash-safe sweep checkpoints.
//
// A CheckpointLog is an append-only JSONL file mapping a trial key (a
// string encoding every input that determines the outcome) to its measured
// numbers. Sweeps look a key up before simulating and append after; a
// killed sweep restarted with the same log re-reads the finished cells and
// resumes where it died. Because every double is written with full
// round-trip precision and per-cell seeds are pure functions of the
// configuration, a resumed sweep is numerically identical to an
// uninterrupted one (asserted by tests/exp/test_checkpoint.cpp). A torn
// trailing line from a crash mid-append parses as garbage and is skipped
// on reload — that cell simply re-runs.
//
// CheckpointLog is thread-safe: any number of sweep workers may interleave
// lookup() and record(). File appends are queued and drained by a single
// writer thread (MPSC), so record() never serializes workers behind disk
// I/O and the file only ever sees whole-line appends — the append-only
// crash-safety contract is unchanged. The widened crash window (a record
// accepted but not yet drained) loses at most the queue's tail, which
// recovers exactly like a torn line: those cells re-run. flush() blocks
// until every accepted record is on disk; the destructor drains and joins.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cc/congestion_control.hpp"
#include "exp/sweeps.hpp"
#include "model/network_params.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {

class CheckpointLog {
 public:
  /// Opens (and replays) the log at `path`; the file need not exist yet.
  /// On duplicate keys the last record wins, so re-recording a key is
  /// harmless. Unparseable lines (a torn trailing write from a crash
  /// mid-append) are skipped with a warning — see skipped_lines() — and
  /// their cells simply re-run. A non-null `chaos` injects write failures
  /// and torn records into the writer thread (--chaos drills).
  explicit CheckpointLog(std::string path, ChaosInjector* chaos = nullptr);
  ~CheckpointLog();
  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t size() const;
  /// nullopt when the key has not been recorded. Returns a copy so the
  /// result stays valid while other threads keep recording.
  [[nodiscard]] std::optional<JsonlRecord> lookup(
      const std::string& key) const;
  /// Updates the in-memory view immediately and queues the file append
  /// for the writer thread.
  void record(const std::string& key, JsonlRecord rec);
  /// Blocks until every record() accepted so far has reached the file.
  void flush();
  /// Unparseable lines skipped while replaying the log at construction.
  [[nodiscard]] std::size_t skipped_lines() const noexcept {
    return skipped_lines_;
  }

 private:
  void writer_main();

  std::string path_;
  ChaosInjector* chaos_ = nullptr;
  std::size_t skipped_lines_ = 0;
  mutable std::mutex mu_;  ///< guards everything below
  std::map<std::string, JsonlRecord> entries_;
  std::condition_variable queue_cv_;    ///< wakes the writer
  std::condition_variable drained_cv_;  ///< wakes flush()
  std::vector<std::string> pending_;    ///< encoded lines not yet on disk
  std::size_t accepted_ = 0;  ///< lines handed to record()
  std::size_t written_ = 0;   ///< lines fully appended + flushed
  bool stop_ = false;
  std::thread writer_;  ///< started lazily on the first record()
};

/// Canonical text form of a floating-point knob inside a checkpoint or
/// oracle key: %.17g, the same full round-trip precision JsonlRecord uses
/// for values. Every float that enters a key MUST go through this one
/// helper — a key computed before a crash and recomputed after resume
/// (possibly from a value that round-tripped through the log) must be the
/// same string, or the resumed run silently re-runs (or worse, collides)
/// cells. Pinned by tests/exp/test_oracle.cpp.
[[nodiscard]] std::string canonical_double(double v);

/// Key for one run_mix_trials cell: network, mix, trial plan, every knob of
/// both impairment configs (raw Gilbert-Elliott parameters, not the
/// stationary rate), the full capacity schedule (each step's time and
/// rate), and the guard policy (watchdog limits, retries, injected
/// failures). Everything that changes the measured numbers is in here, so
/// one log file can serve a whole multi-dimension sweep. Floating-point
/// knobs (capacity and scheduled rates are doubles) are canonicalized via
/// canonical_double, NOT truncated to integers — two capacities that differ
/// below 1 byte/sec must not collide, and a key must survive a
/// value->text->value round trip unchanged.
[[nodiscard]] std::string mix_checkpoint_key(const NetworkParams& net,
                                             int num_cubic, int num_other,
                                             CcKind other,
                                             const TrialConfig& cfg);

[[nodiscard]] JsonlRecord mix_to_record(const MixOutcome& m);
[[nodiscard]] MixOutcome mix_from_record(const JsonlRecord& rec);

// --- Fabric lease records (exp/fabric.hpp) -------------------------------
//
// The multi-process sweep fabric coordinates workers through the SAME log:
// a cell's lease lifecycle (claim -> heartbeat -> expired/commit) is
// recorded under the derived key "lease <cell key>", so lease records and
// result records share the append-only file, last-write-wins replay, and
// torn-line recovery without colliding — a lease key can never equal a
// mix_checkpoint_key (which always starts with "mix").

/// Key under which a cell's lease state is recorded.
[[nodiscard]] std::string lease_key(const std::string& cell_key);
/// True for keys produced by lease_key — lets summaries and resume logic
/// separate lease bookkeeping from measurement records.
[[nodiscard]] bool is_lease_key(const std::string& key);

/// run_mix_trials with lookup-before-run and record-after-run; a null log
/// degenerates to a plain run_mix_trials call.
[[nodiscard]] MixOutcome run_mix_trials_checkpointed(
    const NetworkParams& net, int num_cubic, int num_other, CcKind other,
    const TrialConfig& cfg, CheckpointLog* log);

}  // namespace bbrnash
