#include "exp/nash_search.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "exp/chaos.hpp"
#include "exp/checkpoint.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario_runner.hpp"

namespace bbrnash {

namespace {

/// Checkpoint log for one search, when the config asks for one.
std::unique_ptr<CheckpointLog> open_checkpoint(const NashSearchConfig& cfg) {
  if (cfg.checkpoint_path.empty()) return nullptr;
  return std::make_unique<CheckpointLog>(cfg.checkpoint_path,
                                         cfg.trial.guard.chaos.get());
}

/// A cell whose every trial failed has no measurement; its all-zero
/// averages would read as "0 Mbps" and silently skew the NE search, so
/// surface the per-trial diagnostics as a hard error instead.
const MixOutcome& require_measurement(const MixOutcome& m, int num_cubic,
                                      int num_other) {
  if (m.trials_completed > 0) return m;
  std::string msg = "NE search cell (" + std::to_string(num_cubic) +
                    " CUBIC vs " + std::to_string(num_other) +
                    " challenger) completed zero trials";
  for (const std::string& f : m.failures) msg += "\n  " + f;
  throw std::runtime_error{msg};
}

/// One payoff cell, with chaos-injected transient failures retried in
/// place. A ChaosFault is environmental — the cell's inputs are fine — so
/// the retry re-runs the identical computation (bit-identical outcome);
/// fire-once per site bounds the loop, with a small cap as a backstop.
MixOutcome run_cell(const NetworkParams& net, int num_cubic, int num_other,
                    const NashSearchConfig& cfg, CheckpointLog* log) {
  ChaosInjector* chaos = cfg.trial.guard.chaos.get();
  const std::string site = "ne-cell nc=" + std::to_string(num_cubic) +
                           " no=" + std::to_string(num_other);
  for (int redo = 0;; ++redo) {
    try {
      if (chaos != nullptr) chaos->maybe_throw(ChaosClass::kNeCell, site);
      return run_mix_trials_checkpointed(net, num_cubic, num_other,
                                         cfg.challenger, cfg.trial, log);
    } catch (const ChaosFault& e) {
      if (redo >= 2) throw;
      std::fprintf(stderr,
                   "nash-search: transient cell failure (%s); retrying\n",
                   e.what());
    }
  }
}

}  // namespace

EmpiricalPayoffs measure_payoffs(const NetworkParams& net, int total_flows,
                                 const NashSearchConfig& cfg) {
  EmpiricalPayoffs out;
  const auto cells = static_cast<std::size_t>(total_flows) + 1;
  out.cubic_mbps.assign(cells, 0.0);
  out.other_mbps.assign(cells, 0.0);
  const auto log = open_checkpoint(cfg);

  // All n+1 distributions are independent cells: run them concurrently,
  // each committing into its own slot. The nested per-cell trial loop in
  // run_mix_trials detects it is inside a pool task and runs inline.
  // CheckpointLog is internally thread-safe; under parallel execution the
  // cells land in the log in completion order, but every record's key and
  // numbers are identical to a serial run's.
  std::vector<MixOutcome> measured(cells);
  parallel_for(cfg.trial.jobs, cells, [&](std::size_t k) {
    measured[k] = run_cell(net, total_flows - static_cast<int>(k),
                           static_cast<int>(k), cfg, log.get());
  });

  // Validate and harvest in k order so an all-failed cell surfaces the
  // same (lowest-k) error a serial sweep would have thrown.
  for (std::size_t k = 0; k < cells; ++k) {
    const MixOutcome& m = require_measurement(
        measured[k], total_flows - static_cast<int>(k), static_cast<int>(k));
    out.cubic_mbps[k] = m.per_flow_cubic_mbps;
    out.other_mbps[k] = m.per_flow_other_mbps;
  }
  return out;
}

std::vector<int> find_ne_enumerate(const NetworkParams& net, int total_flows,
                                   const NashSearchConfig& cfg) {
  const EmpiricalPayoffs p = measure_payoffs(net, total_flows, cfg);
  const double fair_mbps = to_mbps(net.capacity) / total_flows;
  SymmetricGame game{total_flows, p.cubic_mbps, p.other_mbps};
  return game.equilibria(cfg.tolerance_frac * fair_mbps);
}

int find_ne_crossing(const NetworkParams& net, int total_flows,
                     const NashSearchConfig& cfg) {
  if (total_flows < 2) throw std::invalid_argument{"need >= 2 flows"};
  const double fair_mbps = to_mbps(net.capacity) / total_flows;
  const double tol = cfg.tolerance_frac * fair_mbps;

  // The crossing search is adaptive — which cell runs next depends on the
  // last result — so cells stay serial here; parallelism comes from the
  // trial loop inside each probed cell (cfg.trial.jobs).
  std::map<int, MixOutcome> cache;
  const auto log = open_checkpoint(cfg);
  const auto outcome_at = [&](int k) -> const MixOutcome& {
    auto it = cache.find(k);
    if (it == cache.end()) {
      MixOutcome m = run_cell(net, total_flows - k, k, cfg, log.get());
      require_measurement(m, total_flows - k, k);
      it = cache.emplace(k, std::move(m)).first;
    }
    return it->second;
  };
  // Advantage of the challenger over fair share at distribution k >= 1.
  const auto advantage = [&](int k) {
    return outcome_at(k).per_flow_other_mbps - fair_mbps;
  };

  // The challenger's per-flow throughput decays monotonically in k
  // (the paper's diminishing-returns observation, Fig. 5): binary-search
  // the largest k whose advantage is still non-negative.
  int lo = 1;
  int hi = total_flows;
  if (advantage(lo) < 0) {
    hi = 0;  // not even one challenger flow beats fair share
  } else if (advantage(hi) >= 0) {
    lo = total_flows;  // all-challenger is above/at fair share (Case 1)
  } else {
    while (hi - lo > 1) {
      const int mid = lo + (hi - lo) / 2;
      if (advantage(mid) >= 0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    hi = lo;
  }
  const int crossing = hi;

  // Verify the NE condition in the crossing's neighbourhood using the
  // cached-and-extended payoff table.
  const auto payoff_cubic = [&](int k) {
    return k >= total_flows ? 0.0 : outcome_at(k).per_flow_cubic_mbps;
  };
  const auto payoff_other = [&](int k) {
    return k <= 0 ? 0.0 : outcome_at(k).per_flow_other_mbps;
  };
  const auto is_ne = [&](int k) {
    if (k < 0 || k > total_flows) return false;
    if (k < total_flows && payoff_other(k + 1) > payoff_cubic(k) + tol) {
      return false;
    }
    if (k > 0 && payoff_cubic(k - 1) > payoff_other(k) + tol) return false;
    return true;
  };
  for (const int k : {crossing, crossing + 1, crossing - 1}) {
    if (k >= 0 && k <= total_flows && is_ne(k)) return k;
  }
  return crossing;
}

namespace {

struct ProfileOutcome {
  std::vector<double> cubic_mbps;  // per group, per-flow
  std::vector<double> other_mbps;
};

ProfileOutcome run_profile(BytesPerSec capacity, Bytes buffer_bytes,
                           const std::vector<RttGroup>& groups,
                           const GroupProfile& profile, CcKind challenger,
                           const TrialConfig& trial) {
  const auto g_count = groups.size();
  ProfileOutcome avg;
  avg.cubic_mbps.assign(g_count, 0.0);
  avg.other_mbps.assign(g_count, 0.0);

  // The flow list is a pure function of (groups, profile): identical for
  // every trial, so build the group mapping once.
  std::vector<std::size_t> flow_group;
  std::vector<FlowSpec> flows;
  for (std::size_t g = 0; g < g_count; ++g) {
    const int cubics = profile.cubic_per_group[g];
    for (int i = 0; i < groups[g].flows; ++i) {
      flows.push_back(
          {i < cubics ? CcKind::kCubic : challenger, groups[g].base_rtt});
      flow_group.push_back(g);
    }
  }

  const int trials = trial.trials > 0 ? trial.trials : 1;
  std::vector<RunResult> results(static_cast<std::size_t>(trials));
  parallel_for(trial.jobs, static_cast<std::size_t>(trials),
               [&](std::size_t t) {
                 Scenario s;
                 s.capacity = capacity;
                 s.buffer_bytes = buffer_bytes;
                 s.duration = trial.duration;
                 s.warmup = trial.warmup;
                 s.seed = trial.seed + static_cast<std::uint64_t>(t) * 1000003ULL;
                 s.flows = flows;
                 results[t] = run_scenario(s);
               });

  // Reduce in trial order (bit-identical to the serial loop).
  for (int t = 0; t < trials; ++t) {
    const RunResult& r = results[static_cast<std::size_t>(t)];
    std::vector<double> cubic_sum(g_count, 0.0);
    std::vector<double> other_sum(g_count, 0.0);
    std::vector<int> cubic_n(g_count, 0);
    std::vector<int> other_n(g_count, 0);
    for (std::size_t i = 0; i < r.flows.size(); ++i) {
      const std::size_t g = flow_group[i];
      if (r.flows[i].cc == CcKind::kCubic) {
        cubic_sum[g] += to_mbps(r.flows[i].stats.goodput_bps);
        ++cubic_n[g];
      } else {
        other_sum[g] += to_mbps(r.flows[i].stats.goodput_bps);
        ++other_n[g];
      }
    }
    for (std::size_t g = 0; g < g_count; ++g) {
      if (cubic_n[g]) avg.cubic_mbps[g] += cubic_sum[g] / cubic_n[g];
      if (other_n[g]) avg.other_mbps[g] += other_sum[g] / other_n[g];
    }
  }
  for (std::size_t g = 0; g < g_count; ++g) {
    avg.cubic_mbps[g] /= trials;
    avg.other_mbps[g] /= trials;
  }
  return avg;
}

}  // namespace

MultiRttNe find_multi_rtt_ne(BytesPerSec capacity, Bytes buffer_bytes,
                             const std::vector<RttGroup>& groups,
                             const GroupProfile& start,
                             const NashSearchConfig& cfg) {
  if (groups.empty() || start.cubic_per_group.size() != groups.size()) {
    throw std::invalid_argument{"profile/group size mismatch"};
  }
  int total = 0;
  for (const auto& g : groups) total += g.flows;
  const double fair_mbps = to_mbps(capacity) / std::max(total, 1);
  const double tol = cfg.tolerance_frac * fair_mbps;

  MultiRttNe result;
  result.profile = start;

  ProfileOutcome current = run_profile(capacity, buffer_bytes, groups,
                                       result.profile, cfg.challenger,
                                       cfg.trial);

  const int max_steps = 2 * total + 4;
  for (int step = 0; step < max_steps; ++step) {
    // Enumerate the step's unilateral deviations in the fixed serial order
    // (group ascending; CUBIC→challenger before challenger→CUBIC), run
    // them concurrently into slots, then pick the winner by scanning the
    // slots in that same order — ties resolve exactly as the serial
    // first-strict-improvement scan did.
    struct Candidate {
      GroupProfile profile;
      std::size_t group = 0;
      bool to_challenger = false;
    };
    std::vector<Candidate> candidates;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (result.profile.cubic_per_group[g] > 0) {
        GroupProfile cand = result.profile;
        --cand.cubic_per_group[g];
        candidates.push_back({std::move(cand), g, true});
      }
      if (result.profile.cubic_per_group[g] < groups[g].flows) {
        GroupProfile cand = result.profile;
        ++cand.cubic_per_group[g];
        candidates.push_back({std::move(cand), g, false});
      }
    }
    std::vector<ProfileOutcome> outcomes(candidates.size());
    parallel_for(cfg.trial.jobs, candidates.size(), [&](std::size_t i) {
      outcomes[i] = run_profile(capacity, buffer_bytes, groups,
                                candidates[i].profile, cfg.challenger,
                                cfg.trial);
    });

    double best_gain = tol;
    GroupProfile best_profile;
    ProfileOutcome best_outcome;
    bool found = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      const ProfileOutcome& o = outcomes[i];
      const double gain = c.to_challenger
                              ? o.other_mbps[c.group] - current.cubic_mbps[c.group]
                              : o.cubic_mbps[c.group] - current.other_mbps[c.group];
      if (gain > best_gain) {
        best_gain = gain;
        best_profile = c.profile;
        best_outcome = o;
        found = true;
      }
    }

    if (!found) {
      result.converged = true;
      break;
    }
    result.profile = best_profile;
    current = best_outcome;
    result.steps_taken = step + 1;
  }

  result.group_cubic_mbps = current.cubic_mbps;
  result.group_other_mbps = current.other_mbps;
  return result;
}

}  // namespace bbrnash
