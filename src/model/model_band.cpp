#include "model/model_band.hpp"

#include <algorithm>
#include <cmath>

namespace bbrnash {

std::optional<ModelBand> model_band(const NetworkParams& net, int num_cubic,
                                    int num_bbr, double duration_sec) {
  if (num_cubic < 1 || num_bbr < 1) return std::nullopt;
  const auto iv = prediction_interval(net, num_cubic, num_bbr);
  if (!iv) return std::nullopt;

  ModelBand band;
  band.cubic_low =
      std::min(iv->sync.per_flow_cubic, iv->desync.per_flow_cubic);
  band.cubic_high =
      std::max(iv->sync.per_flow_cubic, iv->desync.per_flow_cubic);
  band.bbr_low = std::min(iv->sync.per_flow_bbr, iv->desync.per_flow_bbr);
  band.bbr_high = std::max(iv->sync.per_flow_bbr, iv->desync.per_flow_bbr);
  band.mishra_mid_cubic = 0.5 * (band.cubic_low + band.cubic_high);
  band.mishra_mid_bbr = 0.5 * (band.bbr_low + band.bbr_high);

  // Widen by the Ware baseline: its always-full-buffer assumption biases
  // BBR low in shallow buffers and high in deep ones, so folding it into
  // the envelope covers the regimes where the Mishra interval is tightest
  // exactly where real (and interpolated) cells scatter most.
  const WarePrediction ware = ware_prediction(
      net, WareInputs{num_bbr, duration_sec, 1500});
  band.ware_bbr_per_flow = ware.lambda_bbr / num_bbr;
  band.bbr_low = std::min(band.bbr_low, band.ware_bbr_per_flow);
  band.bbr_high = std::max(band.bbr_high, band.ware_bbr_per_flow);
  const double ware_cubic_per_flow = ware.lambda_cubic / num_cubic;
  band.cubic_low = std::min(band.cubic_low, ware_cubic_per_flow);
  band.cubic_high = std::max(band.cubic_high, ware_cubic_per_flow);
  return band;
}

namespace {

/// Distance of v outside [low, high], relative to the band midpoint.
double outside_frac(double v, double low, double high, double mid) {
  if (!(mid > 0.0)) return 0.0;  // degenerate band: nothing to compare
  if (v < low) return (low - v) / mid;
  if (v > high) return (v - high) / mid;
  return 0.0;
}

}  // namespace

double band_deviation(const ModelBand& band, double cubic_bps,
                      double bbr_bps) {
  const double dc = outside_frac(cubic_bps, band.cubic_low, band.cubic_high,
                                 band.mishra_mid_cubic);
  const double db = outside_frac(bbr_bps, band.bbr_low, band.bbr_high,
                                 band.mishra_mid_bbr);
  return std::max(dc, db);
}

}  // namespace bbrnash
