// Closed-form throughput band for oracle cross-checks.
//
// The payoff oracle (exp/oracle.hpp) answers most queries without touching
// the simulator: exact memo hits, then multilinear interpolation between
// cached cells. Interpolation needs a sanity envelope — a blended value
// that lands far from every closed form is a lattice artefact (e.g. the
// cached corners straddle the buffer-full knee), not an answer. This unit
// evaluates the Mishra sync/desync interval (Eqs. 21/22) plus the Ware
// et al. baseline at one operating point and reports how far a candidate
// per-flow throughput pair falls outside the widest band the closed forms
// span. The oracle rejects interpolations past a configured deviation and
// falls through to computing the cell for real.
#pragma once

#include <optional>

#include "model/mishra_model.hpp"
#include "model/network_params.hpp"
#include "model/ware_model.hpp"

namespace bbrnash {

/// Per-flow throughput envelope at one (net, N_c, N_b) point, bytes/sec.
/// Bounds come from the Mishra sync/desync pair widened by the Ware
/// baseline (aggregate BBR share spread evenly over N_b).
struct ModelBand {
  double cubic_low = 0.0;   ///< per-flow CUBIC, bytes/sec
  double cubic_high = 0.0;
  double bbr_low = 0.0;     ///< per-flow BBR, bytes/sec
  double bbr_high = 0.0;
  double ware_bbr_per_flow = 0.0;  ///< Ware baseline, bytes/sec
  double mishra_mid_cubic = 0.0;   ///< midpoint of the Mishra interval
  double mishra_mid_bbr = 0.0;
};

/// nullopt when the closed forms do not apply: needs N_c >= 1, N_b >= 1
/// and B >= 1 BDP (the model's validity floor). `duration_sec` feeds the
/// Ware ProbeRTT term (the paper's 2-minute default).
[[nodiscard]] std::optional<ModelBand> model_band(const NetworkParams& net,
                                                  int num_cubic, int num_bbr,
                                                  double duration_sec = 120.0);

/// Relative distance of (cubic_bps, bbr_bps) outside `band`, normalized by
/// the band midpoint of the corresponding class: 0 when both lie inside
/// [low, high]. The oracle compares this against its rejection threshold.
[[nodiscard]] double band_deviation(const ModelBand& band, double cubic_bps,
                                    double bbr_bps);

}  // namespace bbrnash
