#include "model/mishra_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace bbrnash {

double backoff_kappa(CubicSyncBound bound, int num_cubic) {
  if (bound == CubicSyncBound::kSynchronized) return 0.7;
  // Eq. 22: only one of N_c flows backs off at a time, so the aggregate
  // retains (N_c - 0.3)/N_c of W_max.
  const double nc = std::max(1, num_cubic);
  return (nc - 0.3) / nc;
}

std::optional<MishraPrediction> solve_mishra(const NetworkParams& net,
                                             double kappa) {
  net.validate();
  const double c = net.capacity;
  const double rtt = to_sec(net.base_rtt);
  const double b = static_cast<double>(net.buffer_bytes);
  const double bdp = c * rtt;

  // Validity: assumptions 1 and 2 need at least 1 BDP of buffer.
  if (b < bdp) return std::nullopt;
  if (kappa <= 0.5 || kappa > 1.0) return std::nullopt;

  const double b_cmin = (b - bdp) / 2.0;

  const auto residual = [&](double b_b) {
    const double lhs = b_cmin + b_cmin / (b_cmin + b_b) * bdp;
    const double rhs = kappa * ((b - b_b) + (b - b_b) / b * bdp);
    return lhs - rhs;
  };

  // f(0) = (1/2 - kappa)(B + bdp) < 0, f(B) = b_cmin*(1 + bdp/(b_cmin+B))
  // >= 0: a bracket always exists. Guard the degenerate B == bdp case
  // where b_cmin == 0 and the root is exactly b_b == B.
  std::optional<double> root;
  if (b_cmin <= 0.0) {
    root = b;
  } else {
    root = find_root_bisect(residual, 0.0, b, RootOptions{1e-6, 200});
  }
  if (!root) return std::nullopt;

  MishraPrediction out;
  out.bbr_buffer_bytes = ensure_finite(*root, "mishra b_b root");
  out.cubic_min_buffer = ensure_finite(b_cmin, "mishra b_cmin");
  out.kappa = kappa;
  // Eq. 19 with b_c = B - b_b (the buffer-full approximation used to get
  // Eq. 18 from Eq. 17).
  const double lambda_c =
      ensure_finite((b - *root) / (rtt + 2.0 * b_cmin / c), "mishra lambda_c");
  out.lambda_cubic = std::clamp(lambda_c, 0.0, c);
  out.lambda_bbr = c - out.lambda_cubic;  // Eq. 20
  return out;
}

std::optional<MishraPrediction> two_flow_prediction(const NetworkParams& net) {
  return solve_mishra(net, 0.7);
}

std::optional<MultiFlowPrediction> multi_flow_prediction(
    const NetworkParams& net, int num_cubic, int num_bbr,
    CubicSyncBound bound) {
  if (num_cubic < 1 || num_bbr < 1) return std::nullopt;
  const auto agg = solve_mishra(net, backoff_kappa(bound, num_cubic));
  if (!agg) return std::nullopt;
  MultiFlowPrediction out;
  out.aggregate = *agg;
  out.per_flow_cubic = agg->lambda_cubic / num_cubic;  // Eq. 23
  out.per_flow_bbr = agg->lambda_bbr / num_bbr;        // Eq. 24
  return out;
}

std::optional<PredictionInterval> prediction_interval(const NetworkParams& net,
                                                      int num_cubic,
                                                      int num_bbr) {
  const auto sync = multi_flow_prediction(net, num_cubic, num_bbr,
                                          CubicSyncBound::kSynchronized);
  const auto desync = multi_flow_prediction(net, num_cubic, num_bbr,
                                            CubicSyncBound::kDesynchronized);
  if (!sync || !desync) return std::nullopt;
  return PredictionInterval{*sync, *desync};
}

}  // namespace bbrnash
