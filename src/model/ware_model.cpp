#include "model/ware_model.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace bbrnash {

WarePrediction ware_prediction(const NetworkParams& net, const WareInputs& in) {
  net.validate();
  const double c = net.capacity;
  const double l = to_sec(net.base_rtt);
  const double q_bytes = static_cast<double>(net.buffer_bytes);
  const double x = net.buffer_in_bdp();
  const double q_pkts = q_bytes / static_cast<double>(in.wire_packet_bytes);
  const double d = in.duration_sec;

  WarePrediction out;
  double p = ensure_finite(0.5 - 1.0 / (2.0 * x) -
                               4.0 * static_cast<double>(in.num_bbr_flows) /
                                   q_pkts,
                           "ware cubic fraction p");
  p = std::clamp(p, 0.0, 1.0);
  out.cubic_fraction = p;

  out.probe_time_sec =
      ensure_finite((q_bytes / c + 0.2 + l) * (d / 10.0), "ware probe time");
  const double active = std::max(0.0, d - out.probe_time_sec);
  out.bbr_fraction = std::clamp(
      ensure_finite((1.0 - p) * active / d, "ware bbr fraction"), 0.0, 1.0);
  out.lambda_bbr = out.bbr_fraction * c;
  out.lambda_cubic = c - out.lambda_bbr;
  return out;
}

}  // namespace bbrnash
