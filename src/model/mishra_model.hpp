// The paper's throughput model (§2.3 basic 2-flow form, §2.4 multi-flow
// form with synchronization bounds).
//
// Derivation recap (all quantities in bytes, bytes/sec, seconds):
//   bdp     = C * RTT
//   b_cmin  = (B - bdp) / 2                          [Eq. 10 + buffer-full]
//   Solve for BBR's average buffer occupancy b_b in (0, B):   [Eq. 17/18]
//     b_cmin + b_cmin/(b_cmin + b_b) * bdp
//         = kappa * ( (B - b_b) + (B - b_b)/B * bdp )
//   with kappa = 0.7 for the 2-flow model and the CUBIC-synchronized bound
//   (Eq. 21), kappa = (N_c - 0.3)/N_c for the de-synchronized bound
//   (Eq. 22). Then                                     [Eq. 19/20]
//     lambda_c = (B - b_b) / (RTT + 2*b_cmin/C)
//     lambda_b = C - lambda_c.
//
// Because kappa > 1/2, the residual f(b_b) = LHS - RHS satisfies
// f(0) = (1/2 - kappa)(B + bdp) < 0 and f(B) > 0, so a root always exists
// in (0, B); f has at most one sign change there (LHS and RHS are both
// decreasing but RHS strictly steeper past the dip), which bisection finds
// reliably.
//
// Validity domain: B >= 1 BDP (below that BBR is not cwnd-bound and CUBIC
// suffers premature loss — the model's assumptions 1 and 2) and roughly
// B <= 100 BDP (above that BBR stops being cwnd-limited; Fig. 12).
#pragma once

#include <optional>

#include "model/network_params.hpp"

namespace bbrnash {

/// Which b_cmin boundary case of §2.4 to use.
enum class CubicSyncBound {
  kSynchronized,    ///< Eq. 21: all CUBIC flows back off together (kappa=0.7)
  kDesynchronized,  ///< Eq. 22: one of N_c backs off at a time
};

struct MishraPrediction {
  double bbr_buffer_bytes = 0.0;    ///< b_b, BBR's average buffer occupancy
  double cubic_min_buffer = 0.0;    ///< b_cmin used by the solution
  double lambda_cubic = 0.0;        ///< aggregate CUBIC bandwidth, bytes/sec
  double lambda_bbr = 0.0;          ///< aggregate BBR bandwidth, bytes/sec
  double kappa = 0.0;               ///< backoff factor used
};

/// kappa for a given bound and CUBIC flow count (Eqs. 21/22).
[[nodiscard]] double backoff_kappa(CubicSyncBound bound, int num_cubic);

/// Aggregate-flow solution. Returns std::nullopt outside the validity
/// domain (B < 1 BDP) or if the root bracket fails (cannot happen for
/// kappa > 1/2, but the API is defensive).
[[nodiscard]] std::optional<MishraPrediction> solve_mishra(
    const NetworkParams& net, double kappa);

/// The §2.3 basic 2-flow model: one CUBIC flow vs one BBR flow.
[[nodiscard]] std::optional<MishraPrediction> two_flow_prediction(
    const NetworkParams& net);

struct MultiFlowPrediction {
  MishraPrediction aggregate;
  double per_flow_cubic = 0.0;  ///< lambda_c / N_c   [Eq. 23]
  double per_flow_bbr = 0.0;    ///< lambda_b / N_b   [Eq. 24]
};

/// The §2.4 multi-flow model for N_c CUBIC flows vs N_b BBR flows.
/// Requires N_c >= 1 and N_b >= 1.
[[nodiscard]] std::optional<MultiFlowPrediction> multi_flow_prediction(
    const NetworkParams& net, int num_cubic, int num_bbr,
    CubicSyncBound bound);

/// Both bounds at once — the paper's "predicted region" in Figs. 4/5.
struct PredictionInterval {
  MultiFlowPrediction sync;    ///< lower BBR throughput bound
  MultiFlowPrediction desync;  ///< upper BBR throughput bound
};

[[nodiscard]] std::optional<PredictionInterval> prediction_interval(
    const NetworkParams& net, int num_cubic, int num_bbr);

}  // namespace bbrnash
