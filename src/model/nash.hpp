// Game-theoretic layer (§4 of the paper).
//
// Two components:
//   * NashPredictor — model-driven: finds the CUBIC/BBR split at which a
//     BBR flow's per-flow throughput equals the fair share C/N (Eq. 25),
//     for each CUBIC-synchronization bound, yielding the "Nash region"
//     plotted in Fig. 9.
//   * SymmetricGame — empirical: given measured per-flow payoffs for every
//     distribution k (number of BBR flows), enumerates the pure-strategy
//     Nash Equilibria of the n-player 2-strategy symmetric game, exactly
//     like the paper's testbed methodology (§4.4).
#pragma once

#include <optional>
#include <vector>

#include "model/mishra_model.hpp"
#include "model/network_params.hpp"

namespace bbrnash {

struct NashPoint {
  double num_bbr = 0.0;    ///< N_b at the fair-share crossing (real-valued)
  double num_cubic = 0.0;  ///< N - N_b (the paper's Fig. 9 y-axis)
};

/// Locates the Eq. 25 crossing for one synchronization bound.
/// Returns N_b = N (all BBR, the paper's Case 1 / point B) when the BBR
/// per-flow advantage persists across every mixed distribution, and
/// std::nullopt outside the model's validity domain.
[[nodiscard]] std::optional<NashPoint> predict_nash(const NetworkParams& net,
                                                    int total_flows,
                                                    CubicSyncBound bound);

struct NashRegion {
  NashPoint sync;    ///< bound from Eq. 21
  NashPoint desync;  ///< bound from Eq. 22
  [[nodiscard]] double cubic_low() const {
    return std::min(sync.num_cubic, desync.num_cubic);
  }
  [[nodiscard]] double cubic_high() const {
    return std::max(sync.num_cubic, desync.num_cubic);
  }
};

[[nodiscard]] std::optional<NashRegion> predict_nash_region(
    const NetworkParams& net, int total_flows);

/// Payoff table for an n-player, 2-strategy symmetric game.
///
/// Index k = number of players using strategy B (here: BBR). Payoffs are
/// per-player. payoff_b[k] is meaningful for k >= 1; payoff_a[k] for
/// k <= n-1 (with strategy A = CUBIC). Unused slots may hold anything.
class SymmetricGame {
 public:
  SymmetricGame(int num_players, std::vector<double> payoff_a,
                std::vector<double> payoff_b);

  [[nodiscard]] int num_players() const { return n_; }

  /// A distribution k is a (weak, pure) Nash Equilibrium when no single
  /// player can strictly gain more than `tolerance` by switching:
  ///   k < n: payoff_b[k+1] <= payoff_a[k] + tolerance   (A won't move)
  ///   k > 0: payoff_a[k-1] <= payoff_b[k] + tolerance   (B won't move)
  [[nodiscard]] bool is_equilibrium(int k, double tolerance = 0.0) const;

  /// All equilibria in [0, n]. The paper observes multiple neighbouring
  /// NE per experiment because payoff differences near the crossing are
  /// within noise; `tolerance` models that.
  [[nodiscard]] std::vector<int> equilibria(double tolerance = 0.0) const;

  /// Best-response dynamics from `start` (each step, one profitable
  /// unilateral switch). Returns the absorbing distribution, or the cycle
  /// entry point capped at n^2 steps. Used by the multi-RTT search.
  [[nodiscard]] int best_response_path(int start, double tolerance = 0.0) const;

 private:
  int n_;
  std::vector<double> payoff_a_;  // CUBIC payoff, index = #BBR players
  std::vector<double> payoff_b_;  // BBR payoff, index = #BBR players
};

}  // namespace bbrnash
