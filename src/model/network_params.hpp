// Shared bottleneck description used by all analytical models.
#pragma once

#include <stdexcept>

#include "util/units.hpp"

namespace bbrnash {

/// The paper's (C, B, RTT) triple. All flows share the base RTT (the
/// model's assumption 6).
struct NetworkParams {
  BytesPerSec capacity = 0;  ///< C, bytes/sec
  Bytes buffer_bytes = 0;    ///< B, bytes
  TimeNs base_rtt = 0;       ///< RTT, propagation only

  [[nodiscard]] double bdp() const {
    return capacity * to_sec(base_rtt);
  }
  [[nodiscard]] double buffer_in_bdp() const { return static_cast<double>(buffer_bytes) / bdp(); }

  void validate() const {
    if (capacity <= 0) throw std::invalid_argument{"capacity must be > 0"};
    if (buffer_bytes <= 0) throw std::invalid_argument{"buffer must be > 0"};
    if (base_rtt <= 0) throw std::invalid_argument{"base RTT must be > 0"};
  }
};

/// Convenience constructor in the paper's units.
inline NetworkParams make_params(double capacity_mbps, double rtt_ms,
                                 double buffer_bdp) {
  NetworkParams p;
  p.capacity = mbps(capacity_mbps);
  p.base_rtt = from_ms(rtt_ms);
  p.buffer_bytes = static_cast<Bytes>(buffer_bdp * p.capacity * rtt_ms / 1e3);
  p.validate();
  return p;
}

}  // namespace bbrnash
