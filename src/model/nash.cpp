#include "model/nash.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace bbrnash {

namespace {

// Per-flow BBR throughput at a real-valued split of `total` flows into
// nb BBR and (total - nb) CUBIC, under one synchronization bound.
std::optional<double> per_flow_bbr(const NetworkParams& net, double total,
                                   double nb, CubicSyncBound bound) {
  const double nc = total - nb;
  if (nc <= 0.0 || nb <= 0.0) return std::nullopt;
  double kappa = 0.7;
  if (bound == CubicSyncBound::kDesynchronized) {
    kappa = (nc - 0.3) / nc;
    // With less than one CUBIC flow the desync expression degenerates.
    if (nc < 1.0) kappa = 0.7;
  }
  const auto agg = solve_mishra(net, kappa);
  if (!agg) return std::nullopt;
  return ensure_finite(agg->lambda_bbr / nb, "nash per-flow BBR payoff");
}

}  // namespace

std::optional<NashPoint> predict_nash(const NetworkParams& net,
                                      int total_flows, CubicSyncBound bound) {
  if (total_flows < 2) return std::nullopt;
  const double n = total_flows;
  const double fair_share = net.capacity / n;

  // Advantage of being a BBR flow at split nb, relative to fair share.
  const auto advantage = [&](double nb) -> std::optional<double> {
    const auto lb = per_flow_bbr(net, n, nb, bound);
    if (!lb) return std::nullopt;
    return *lb - fair_share;
  };

  const double lo = 0.5;       // "almost no BBR flows" end of the AB line
  const double hi = n - 0.5;   // "almost all BBR" end

  const auto adv_lo = advantage(lo);
  const auto adv_hi = advantage(hi);
  if (!adv_lo || !adv_hi) return std::nullopt;

  NashPoint out;
  if (*adv_lo <= 0.0) {
    // Even a lone BBR flow does not beat fair share: CUBIC-only NE.
    out.num_bbr = 0.0;
  } else if (*adv_hi >= 0.0) {
    // The paper's Case 1: the AB line never crosses fair share.
    out.num_bbr = n;
  } else {
    const auto root = find_root_bisect(
        [&](double nb) { return advantage(nb).value_or(0.0); }, lo, hi,
        RootOptions{1e-6, 200});
    if (!root) return std::nullopt;
    out.num_bbr = ensure_finite(*root, "nash AB-line crossing");
  }
  out.num_cubic = n - out.num_bbr;
  return out;
}

std::optional<NashRegion> predict_nash_region(const NetworkParams& net,
                                              int total_flows) {
  const auto sync =
      predict_nash(net, total_flows, CubicSyncBound::kSynchronized);
  const auto desync =
      predict_nash(net, total_flows, CubicSyncBound::kDesynchronized);
  if (!sync || !desync) return std::nullopt;
  return NashRegion{*sync, *desync};
}

SymmetricGame::SymmetricGame(int num_players, std::vector<double> payoff_a,
                             std::vector<double> payoff_b)
    : n_(num_players),
      payoff_a_(std::move(payoff_a)),
      payoff_b_(std::move(payoff_b)) {
  if (n_ < 1) throw std::invalid_argument{"need at least one player"};
  if (payoff_a_.size() != static_cast<std::size_t>(n_ + 1) ||
      payoff_b_.size() != static_cast<std::size_t>(n_ + 1)) {
    throw std::invalid_argument{"payoff tables must have n+1 entries"};
  }
}

bool SymmetricGame::is_equilibrium(int k, double tolerance) const {
  if (k < 0 || k > n_) throw std::out_of_range{"distribution out of range"};
  if (k < n_) {
    // Would a CUBIC player gain by switching to BBR?
    if (payoff_b_[static_cast<std::size_t>(k) + 1] >
        payoff_a_[static_cast<std::size_t>(k)] + tolerance) {
      return false;
    }
  }
  if (k > 0) {
    // Would a BBR player gain by switching to CUBIC?
    if (payoff_a_[static_cast<std::size_t>(k) - 1] >
        payoff_b_[static_cast<std::size_t>(k)] + tolerance) {
      return false;
    }
  }
  return true;
}

std::vector<int> SymmetricGame::equilibria(double tolerance) const {
  std::vector<int> out;
  for (int k = 0; k <= n_; ++k) {
    if (is_equilibrium(k, tolerance)) out.push_back(k);
  }
  return out;
}

int SymmetricGame::best_response_path(int start, double tolerance) const {
  int k = std::clamp(start, 0, n_);
  const int max_steps = n_ * n_ + 1;
  for (int step = 0; step < max_steps; ++step) {
    if (k < n_ && payoff_b_[static_cast<std::size_t>(k) + 1] >
                      payoff_a_[static_cast<std::size_t>(k)] + tolerance) {
      ++k;  // a CUBIC player defects to BBR
      continue;
    }
    if (k > 0 && payoff_a_[static_cast<std::size_t>(k) - 1] >
                     payoff_b_[static_cast<std::size_t>(k)] + tolerance) {
      --k;  // a BBR player defects to CUBIC
      continue;
    }
    break;  // no profitable unilateral deviation: absorbed
  }
  return k;
}

}  // namespace bbrnash
