// The Ware et al. (IMC 2019) model — the baseline the paper compares
// against (its Eqs. 2–4), implemented with the assumptions the paper
// criticizes (notably: the bottleneck buffer is always full).
//
//   p          = 1/2 - 1/(2X) - 4N/q          [CUBIC's aggregate fraction]
//   Probe_time = (q/c + 0.2 + l) * (d/10)
//   BBR_frac   = (1 - p) * (d - Probe_time)/d
//
// where X = buffer size in BDP, N = number of BBR flows, q = buffer size
// (the always-full assumption pins queue occupancy at capacity; the 4N term
// is the 4 packets each BBR flow keeps in flight during ProbeRTT, so it is
// evaluated in packets), l = base RTT, d = experiment duration.
#pragma once

#include "model/network_params.hpp"

namespace bbrnash {

struct WarePrediction {
  double cubic_fraction = 0.0;   ///< p, clamped to [0, 1]
  double probe_time_sec = 0.0;
  double bbr_fraction = 0.0;     ///< aggregate BBR share of C, in [0, 1]
  double lambda_bbr = 0.0;       ///< aggregate BBR bandwidth, bytes/sec
  double lambda_cubic = 0.0;
};

struct WareInputs {
  int num_bbr_flows = 1;
  double duration_sec = 120.0;            ///< the paper uses 2-minute flows
  Bytes wire_packet_bytes = 1500;         ///< for the 4N-packets term
};

[[nodiscard]] WarePrediction ware_prediction(const NetworkParams& net,
                                             const WareInputs& in = {});

}  // namespace bbrnash
