#include "util/jsonl.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace bbrnash {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }
  bool eat(char c) {
    if (done() || text[pos] != c) return false;
    ++pos;
    return true;
  }
};

bool parse_quoted(Cursor& cur, std::string* out) {
  if (!cur.eat('"')) return false;
  out->clear();
  while (!cur.done()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      *out += c;
      continue;
    }
    if (cur.done()) return false;
    const char esc = cur.text[cur.pos++];
    switch (esc) {
      case '"':
      case '\\':
      case '/':
        *out += esc;
        break;
      case 'n':
        *out += '\n';
        break;
      case 't':
        *out += '\t';
        break;
      case 'r':
        *out += '\r';
        break;
      case 'b':
        *out += '\b';
        break;
      case 'f':
        *out += '\f';
        break;
      case 'u': {
        if (cur.pos + 4 > cur.text.size()) return false;
        char hex[5] = {cur.text[cur.pos], cur.text[cur.pos + 1],
                       cur.text[cur.pos + 2], cur.text[cur.pos + 3], '\0'};
        cur.pos += 4;
        char* end = nullptr;
        // bbrnash-lint: allow(raw-parse) -- fixed 4-hex-digit \u escape;
        // end-pointer checked against exactly hex+4 on the next line.
        const unsigned long code = std::strtoul(hex, &end, 16);
        if (end != hex + 4 || code > 0x7F) return false;  // ASCII only
        *out += static_cast<char>(code);
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated string
}

}  // namespace

void JsonlRecord::set(const std::string& key, std::string v) {
  Value val;
  val.kind = Value::Kind::kString;
  val.s = std::move(v);
  fields_[key] = std::move(val);
}

void JsonlRecord::set(const std::string& key, double v) {
  Value val;
  val.kind = Value::Kind::kDouble;
  val.d = v;
  fields_[key] = val;
}

void JsonlRecord::set(const std::string& key, std::uint64_t v) {
  Value val;
  val.kind = Value::Kind::kU64;
  val.u = v;
  fields_[key] = val;
}

bool JsonlRecord::has(const std::string& key) const {
  return fields_.count(key) != 0;
}

std::string JsonlRecord::get_string(const std::string& key,
                                    std::string fallback) const {
  const auto it = fields_.find(key);
  if (it == fields_.end() || it->second.kind != Value::Kind::kString) {
    return fallback;
  }
  return it->second.s;
}

double JsonlRecord::get_double(const std::string& key, double fallback) const {
  const auto it = fields_.find(key);
  if (it == fields_.end()) return fallback;
  switch (it->second.kind) {
    case Value::Kind::kDouble:
      return it->second.d;
    case Value::Kind::kU64:
      return static_cast<double>(it->second.u);
    case Value::Kind::kString:
      return fallback;
  }
  return fallback;
}

std::uint64_t JsonlRecord::get_u64(const std::string& key,
                                   std::uint64_t fallback) const {
  const auto it = fields_.find(key);
  if (it == fields_.end() || it->second.kind != Value::Kind::kU64) {
    return fallback;
  }
  return it->second.u;
}

std::string JsonlRecord::encode() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, val] : fields_) {
    if (!first) out += ",";
    first = false;
    append_escaped(out, key);
    out += ":";
    switch (val.kind) {
      case Value::Kind::kString:
        append_escaped(out, val.s);
        break;
      case Value::Kind::kU64: {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(val.u));
        out += buf;
        break;
      }
      case Value::Kind::kDouble: {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", val.d);
        out += buf;
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::optional<JsonlRecord> JsonlRecord::parse(std::string_view line) {
  Cursor cur{line};
  cur.skip_ws();
  if (!cur.eat('{')) return std::nullopt;
  JsonlRecord rec;
  cur.skip_ws();
  if (cur.eat('}')) {
    cur.skip_ws();
    return cur.done() ? std::optional<JsonlRecord>{rec} : std::nullopt;
  }
  while (true) {
    cur.skip_ws();
    std::string key;
    if (!parse_quoted(cur, &key)) return std::nullopt;
    cur.skip_ws();
    if (!cur.eat(':')) return std::nullopt;
    cur.skip_ws();
    if (cur.done()) return std::nullopt;
    if (cur.peek() == '"') {
      std::string value;
      if (!parse_quoted(cur, &value)) return std::nullopt;
      rec.set(key, std::move(value));
    } else {
      // Number token: everything up to the next ',' / '}' / whitespace.
      const std::size_t start = cur.pos;
      while (!cur.done() && cur.peek() != ',' && cur.peek() != '}' &&
             std::isspace(static_cast<unsigned char>(cur.peek())) == 0) {
        ++cur.pos;
      }
      const std::string token{cur.text.substr(start, cur.pos - start)};
      if (token.empty()) return std::nullopt;
      const bool integral =
          token.find_first_not_of("0123456789") == std::string::npos;
      if (integral) {
        errno = 0;
        char* end = nullptr;
        // bbrnash-lint: allow(raw-parse) -- this IS the checkpoint JSON
        // number parser; whole-token + errno checked immediately below.
        const std::uint64_t u = std::strtoull(token.c_str(), &end, 10);
        if (errno != 0 || end != token.c_str() + token.size()) {
          return std::nullopt;
        }
        rec.set(key, u);
      } else {
        errno = 0;
        char* end = nullptr;
        // bbrnash-lint: allow(raw-parse) -- this IS the checkpoint JSON
        // number parser; whole-token consumption checked on the next line.
        const double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) return std::nullopt;
        rec.set(key, d);
      }
    }
    cur.skip_ws();
    if (cur.eat('}')) break;
    if (!cur.eat(',')) return std::nullopt;
  }
  cur.skip_ws();
  if (!cur.done()) return std::nullopt;
  return rec;
}

bool JsonlRecord::operator==(const JsonlRecord& other) const {
  return fields_ == other.fields_;
}

void append_jsonl_line(const std::string& path, const std::string& line) {
  // If a previous writer crashed mid-append the file ends in a torn,
  // unterminated line; appending straight after it would glue the new
  // record onto the garbage and lose both. Start on a fresh line instead —
  // the torn line stays unparseable and is skipped on read.
  bool needs_newline = false;
  {
    std::ifstream probe{path, std::ios::binary};
    if (probe) {
      probe.seekg(0, std::ios::end);
      if (probe.tellg() > 0) {
        probe.seekg(-1, std::ios::end);
        needs_newline = probe.get() != '\n';
      }
    }
  }
  std::ofstream out{path, std::ios::app};
  if (!out) {
    throw std::runtime_error{"cannot open checkpoint file for append: " +
                             path};
  }
  if (needs_newline) out << '\n';
  out << line << '\n';
  out.flush();
  if (!out) {
    throw std::runtime_error{"failed writing checkpoint file: " + path};
  }
}

std::vector<JsonlRecord> read_jsonl(const std::string& path,
                                    std::size_t* skipped) {
  std::vector<JsonlRecord> out;
  if (skipped != nullptr) *skipped = 0;
  std::ifstream in{path};
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (auto rec = JsonlRecord::parse(line)) {
      out.push_back(std::move(*rec));
    } else if (skipped != nullptr &&
               line.find_first_not_of(" \t\r") != std::string::npos) {
      ++*skipped;
    }
  }
  return out;
}

}  // namespace bbrnash
