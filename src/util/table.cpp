#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bbrnash {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (const double v : cells) out.push_back(format_double(v, precision));
  add_row(std::move(out));
}

void Table::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  emit([&] {
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (const auto w : widths) rule.emplace_back(w, '-');
    return rule;
  }());
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace bbrnash
