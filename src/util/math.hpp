// Scalar root finding and small numeric helpers for the analytical models.
#pragma once

#include <functional>
#include <optional>

namespace bbrnash {

struct RootOptions {
  double tolerance = 1e-9;  ///< absolute tolerance on the bracket width
  int max_iterations = 200;
};

/// Finds x in [lo, hi] with f(x) ~ 0 by safeguarded bisection.
///
/// Requires f(lo) and f(hi) to have opposite signs (or one of them to be
/// zero); returns std::nullopt when the bracket does not straddle a root.
/// Bisection is chosen over Newton because the model equations are cheap and
/// we value unconditional convergence over iteration count.
std::optional<double> find_root_bisect(const std::function<double(double)>& f,
                                       double lo, double hi,
                                       const RootOptions& opts = {});

/// Linear interpolation parameter: returns t such that
/// lo + t*(hi-lo) == x, clamped to [0,1].
double inverse_lerp(double lo, double hi, double x);

/// True when |a-b| <= tol * max(1, |a|, |b|) (mixed abs/rel comparison).
bool nearly_equal(double a, double b, double tol = 1e-9);

/// NaN/Inf guard for model outputs: returns `v` unchanged when finite,
/// otherwise throws std::domain_error naming `what`. A silent NaN from a
/// model evaluation would propagate into shares and NE payoffs and corrupt
/// conclusions without any error; failing loudly at the source is cheaper
/// than auditing downstream.
double ensure_finite(double v, const char* what);

}  // namespace bbrnash
