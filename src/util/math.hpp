// Scalar root finding and small numeric helpers for the analytical models.
#pragma once

#include <functional>
#include <optional>

namespace bbrnash {

struct RootOptions {
  double tolerance = 1e-9;  ///< absolute tolerance on the bracket width
  int max_iterations = 200;
};

/// Finds x in [lo, hi] with f(x) ~ 0 by safeguarded bisection.
///
/// Requires f(lo) and f(hi) to have opposite signs (or one of them to be
/// zero); returns std::nullopt when the bracket does not straddle a root.
/// Bisection is chosen over Newton because the model equations are cheap and
/// we value unconditional convergence over iteration count.
std::optional<double> find_root_bisect(const std::function<double(double)>& f,
                                       double lo, double hi,
                                       const RootOptions& opts = {});

/// Linear interpolation parameter: returns t such that
/// lo + t*(hi-lo) == x, clamped to [0,1].
double inverse_lerp(double lo, double hi, double x);

/// True when |a-b| <= tol * max(1, |a|, |b|) (mixed abs/rel comparison).
bool nearly_equal(double a, double b, double tol = 1e-9);

}  // namespace bbrnash
