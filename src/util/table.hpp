// Plain-text table and CSV emitters used by the benchmark harness to print
// the paper's figure series in gnuplot-compatible form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bbrnash {

/// Accumulates rows of stringified cells and renders them either as an
/// aligned text table (for terminals) or as CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  void add_row(const std::vector<double>& cells, int precision = 3);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return headers_.size(); }

  void print_aligned(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
std::string format_double(double v, int precision = 3);

}  // namespace bbrnash
