#include "util/math.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace bbrnash {

std::optional<double> find_root_bisect(const std::function<double(double)>& f,
                                       double lo, double hi,
                                       const RootOptions& opts) {
  if (lo > hi) std::swap(lo, hi);
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (std::signbit(flo) == std::signbit(fhi)) return std::nullopt;

  for (int i = 0; i < opts.max_iterations && (hi - lo) > opts.tolerance; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double inverse_lerp(double lo, double hi, double x) {
  if (hi == lo) return 0.0;
  return std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

bool nearly_equal(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double ensure_finite(double v, const char* what) {
  if (!std::isfinite(v)) {
    throw std::domain_error{std::string{"non-finite model value: "} + what +
                            " = " + std::to_string(v)};
  }
  return v;
}

}  // namespace bbrnash
