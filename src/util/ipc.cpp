#include "util/ipc.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bbrnash {

namespace {

// sockaddr_un for `path`, or false when the path exceeds sun_path.
bool fill_addr(const std::string& path, sockaddr_un* addr, std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) {
      *error = "socket path empty or longer than sun_path (" +
               std::to_string(sizeof(addr->sun_path) - 1) +
               " bytes): " + path;
    }
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

int make_stream_socket(std::string* error) {
  // bbrnash-lint: allow(process-control) -- the serve stack's one socket
  // factory; every daemon/client endpoint is created here.
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 && error != nullptr) {
    *error = std::string{"socket(): "} + std::strerror(errno);
  }
  return fd;
}

// One probe connect used by stale-socket detection. Distinguishes "nobody
// accepting" (stale file, safe to remove) from "live daemon" (refuse to
// displace).
enum class ProbeResult { kLive, kStale, kError };

ProbeResult probe_endpoint(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (!fill_addr(path, &addr, error)) {
    return ProbeResult::kError;
  }
  const int fd = make_stream_socket(error);
  if (fd < 0) {
    return ProbeResult::kError;
  }
  // bbrnash-lint: allow(process-control) -- stale-socket probe: a refused
  // connect proves no daemon is accepting on the leftover path.
  // bbrnash-lint: allow(reinterpret-cast) -- the POSIX sockaddr pun: the
  // sockets ABI requires passing sockaddr_un as struct sockaddr*.
  const int rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr));
  const int saved = errno;
  ipc_close(fd);
  if (rc == 0) {
    return ProbeResult::kLive;
  }
  if (saved == ECONNREFUSED) {
    return ProbeResult::kStale;
  }
  if (error != nullptr) {
    *error = std::string{"connect() probe: "} + std::strerror(saved);
  }
  return ProbeResult::kError;
}

int bind_and_listen(const std::string& path, sockaddr_un* addr,
                    std::string* error) {
  const int fd = make_stream_socket(error);
  if (fd < 0) {
    return -1;
  }
  // bbrnash-lint: allow(process-control) -- the daemon's one bind site;
  // EADDRINUSE feeds the stale-socket recovery path in ipc_listen().
  // bbrnash-lint: allow(reinterpret-cast) -- the POSIX sockaddr pun: the
  // sockets ABI requires passing sockaddr_un as struct sockaddr*.
  if (bind(fd, reinterpret_cast<const sockaddr*>(addr), sizeof(*addr)) != 0) {
    if (error != nullptr) {
      *error = std::string{"bind(): "} + std::strerror(errno) +
               (errno == EADDRINUSE ? std::string{" (path: "} + path + ")"
                                    : std::string{});
    }
    const int saved = errno;
    ipc_close(fd);
    errno = saved;
    return -1;
  }
  // bbrnash-lint: allow(process-control) -- the daemon's one listen site.
  if (listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = std::string{"listen(): "} + std::strerror(errno);
    }
    ipc_close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int ipc_listen(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (!fill_addr(path, &addr, error)) {
    return -1;
  }
  errno = 0;
  int fd = bind_and_listen(path, &addr, error);
  if (fd >= 0) {
    return fd;
  }
  if (errno != EADDRINUSE) {
    return -1;
  }
  // The path exists. Only a genuinely stale socket file (SIGKILLed daemon
  // that never unlinked) may be displaced; a live daemon is an error.
  struct stat st{};
  if (stat(path.c_str(), &st) == 0 && !S_ISSOCK(st.st_mode)) {
    if (error != nullptr) {
      *error = "refusing to remove non-socket file at " + path;
    }
    return -1;
  }
  std::string probe_err;
  switch (probe_endpoint(path, &probe_err)) {
    case ProbeResult::kLive:
      if (error != nullptr) {
        *error = "a live daemon is already serving " + path;
      }
      return -1;
    case ProbeResult::kError:
      if (error != nullptr) {
        *error = "cannot classify existing socket at " + path + ": " +
                 probe_err;
      }
      return -1;
    case ProbeResult::kStale:
      break;
  }
  ipc_unlink(path);
  fd = bind_and_listen(path, &addr, error);
  return fd;
}

int ipc_connect(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (!fill_addr(path, &addr, error)) {
    return -1;
  }
  const int fd = make_stream_socket(error);
  if (fd < 0) {
    return -1;
  }
  // bbrnash-lint: allow(process-control) -- the client's one connect site;
  // retry/backoff policy lives in OracleClient, not here.
  // bbrnash-lint: allow(reinterpret-cast) -- the POSIX sockaddr pun: the
  // sockets ABI requires passing sockaddr_un as struct sockaddr*.
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = std::string{"connect(): "} + std::strerror(errno) +
               " (path: " + path + ")";
    }
    ipc_close(fd);
    return -1;
  }
  return fd;
}

int ipc_accept(int listen_fd) {
  for (;;) {
    // bbrnash-lint: allow(process-control) -- the daemon's one accept site,
    // called from the poll loop on a nonblocking listener.
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      return fd;
    }
    if (errno == EINTR) {
      continue;
    }
    return -1;
  }
}

void ipc_close(int fd) {
  if (fd >= 0) {
    close(fd);
  }
}

void ipc_unlink(const std::string& path) {
  // bbrnash-lint: allow(process-control) -- socket-file teardown (graceful
  // drain) and stale-endpoint removal both funnel through here.
  unlink(path.c_str());
}

void ipc_set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

bool ipc_write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE -> false, never as a
    // process-killing SIGPIPE. This is the satellite contract for every
    // daemon and client write path.
    const ssize_t w = send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool ipc_write_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  return ipc_write_all(fd, framed.data(), framed.size());
}

long ipc_write_some(int fd, const char* data, std::size_t n) {
  for (;;) {
    const ssize_t w = send(fd, data, n, MSG_NOSIGNAL);
    if (w >= 0) {
      return static_cast<long>(w);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return 0;
    }
    return -1;
  }
}

bool IpcLineReader::drain(int fd, std::vector<std::string>* out) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      flush_lines(out);
      return false;  // peer closed
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      flush_lines(out);
      return true;
    }
    flush_lines(out);
    return false;  // hard error: treat like a disconnect
  }
}

void IpcLineReader::flush_lines(std::vector<std::string>* out) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buf_.find('\n', start);
    if (nl == std::string::npos) {
      break;
    }
    out->push_back(buf_.substr(start, nl - start));
    start = nl + 1;
  }
  if (start > 0) {
    buf_.erase(0, start);
  }
}

}  // namespace bbrnash
