// Counting-allocator hook: process-wide tallies of every global
// operator new / delete call.
//
// The counters are defined in alloc_counter.cpp, which also *replaces* the
// global allocation functions. That translation unit is deliberately kept
// out of bbrnash_util and built into its own static library
// (`bbrnash_alloccount`): only binaries that opt in (the perf harness and
// the zero-allocation assertion test) link it, so ordinary builds keep the
// stock allocator. Linking the library is what arms the hook — there is no
// runtime switch, and the counters start at zero at process start.
//
// The counts are exact call counts (not net live objects): `news()` is the
// number of allocation calls, `deletes()` the number of deallocation calls
// with a non-null pointer, `bytes()` the sum of requested sizes. Relaxed
// atomics keep the hook cheap and thread-safe (the parallel sweep engine
// allocates from many workers).
#pragma once

#include <cstdint>

namespace bbrnash::allocs {

/// Number of global operator new / new[] calls since process start.
[[nodiscard]] std::uint64_t news() noexcept;

/// Number of global operator delete / delete[] calls (non-null pointer).
[[nodiscard]] std::uint64_t deletes() noexcept;

/// Total bytes requested from operator new since process start.
[[nodiscard]] std::uint64_t bytes() noexcept;

/// Debugging trap: while armed, the very next operator new aborts the
/// process. Run the binary under a debugger with the trap armed across a
/// supposedly allocation-free region and the backtrace names the
/// offender. Not for production paths.
void set_trap(bool armed) noexcept;

}  // namespace bbrnash::allocs
