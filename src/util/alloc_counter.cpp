// Replacement global allocation functions that count every call.
// See alloc_counter.hpp for how and when this TU is linked.

#include "util/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <execinfo.h>
#include <unistd.h>
#endif

namespace {

std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_trap{false};

// Dumps the call stack without allocating (backtrace_symbols_fd writes
// straight to the fd) and aborts; resolve the printed offsets with
// addr2line. Used only via allocs::set_trap.
[[noreturn]] void trap_fired() noexcept {
#if defined(__GLIBC__)
  void* frames[64];
  const int n = backtrace(frames, 64);
  backtrace_symbols_fd(frames, n, 2);
#endif
  std::abort();
}

void* counted_alloc(std::size_t size) noexcept {
  if (g_trap.load(std::memory_order_relaxed)) trap_fired();
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc(0) may return null legitimately; allocate at least one byte so a
  // null return always means exhaustion.
  return std::malloc(size ? size : 1);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  if (g_trap.load(std::memory_order_relaxed)) trap_fired();
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : 1) != 0) return nullptr;
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace bbrnash::allocs {

std::uint64_t news() noexcept {
  return g_news.load(std::memory_order_relaxed);
}
std::uint64_t deletes() noexcept {
  return g_deletes.load(std::memory_order_relaxed);
}
std::uint64_t bytes() noexcept {
  return g_bytes.load(std::memory_order_relaxed);
}
void set_trap(bool armed) noexcept {
  g_trap.store(armed, std::memory_order_relaxed);
}

}  // namespace bbrnash::allocs

// --- Global replacement functions ([new.delete.single] / [.array]) --------

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
