// Minimal flat JSONL records for crash-safe experiment checkpoints.
//
// One record = one flat JSON object on one line. Values are strings,
// unsigned integers or doubles; doubles are printed with %.17g so a
// written value parses back bit-identically — a resumed sweep must
// reproduce the uninterrupted run's numbers exactly. This is deliberately
// not a general JSON library (no nesting, no arrays): checkpoints don't
// need them, and a handwritten flat parser is easy to make robust against
// the one corruption mode that matters — a partial trailing line left by
// a crash mid-append, which read_jsonl simply skips.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bbrnash {

class JsonlRecord {
 public:
  void set(const std::string& key, std::string v);
  void set(const std::string& key, const char* v) { set(key, std::string{v}); }
  /// For std::string_view values — notably the schema constants from
  /// util/schemas.hpp.
  void set(const std::string& key, std::string_view v) {
    set(key, std::string{v});
  }
  void set(const std::string& key, double v);
  void set(const std::string& key, std::uint64_t v);
  /// Convenience for non-negative counters; throws std::invalid_argument on
  /// a negative value rather than silently storing a huge unsigned one.
  void set(const std::string& key, int v) {
    if (v < 0) {
      throw std::invalid_argument{"JsonlRecord::set: negative value for '" +
                                  key + "' (records store unsigned counters)"};
    }
    set(key, static_cast<std::uint64_t>(v));
  }

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback = "") const;
  /// Integer-valued fields coerce to double (e.g. "42" written for 42.0).
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback = 0) const;

  /// One JSON object, keys in sorted order (stable for diffing logs).
  [[nodiscard]] std::string encode() const;
  /// nullopt for anything that is not one complete flat JSON object.
  static std::optional<JsonlRecord> parse(std::string_view line);

  [[nodiscard]] bool operator==(const JsonlRecord& other) const;

 private:
  struct Value {
    enum class Kind { kString, kU64, kDouble };
    Kind kind = Kind::kString;
    std::string s;
    std::uint64_t u = 0;
    double d = 0.0;

    bool operator==(const Value& o) const {
      return kind == o.kind && s == o.s && u == o.u && d == o.d;
    }
  };
  std::map<std::string, Value> fields_;
};

/// Appends one line (a '\n' is added) to `path`, creating it if needed,
/// and flushes. Throws std::runtime_error when the file cannot be written.
void append_jsonl_line(const std::string& path, const std::string& line);

/// Reads every parseable record from `path`. A missing file yields an empty
/// vector; unparseable lines (including a torn trailing write) are skipped.
/// When `skipped` is non-null it receives the count of non-empty lines that
/// failed to parse, so callers can warn about torn/corrupt records instead
/// of silently losing them.
std::vector<JsonlRecord> read_jsonl(const std::string& path,
                                    std::size_t* skipped = nullptr);

}  // namespace bbrnash
