#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bbrnash {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

double jain_fairness(const std::vector<double>& shares) {
  if (shares.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

}  // namespace bbrnash
