// Deterministic xoshiro256++ PRNG.
//
// Simulations must be exactly reproducible from (scenario, seed); we do not
// use std::mt19937 because its distributions are not guaranteed identical
// across standard-library implementations. All distribution code here is
// self-contained and portable.
#pragma once

#include <cstdint>

namespace bbrnash {

class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64, per the
  /// xoshiro authors' recommendation.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Raw 64 uniform bits (xoshiro256++ step).
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias
  /// (bitmask-with-rejection; expected < 2 draws per call).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Smallest all-ones mask covering bound-1.
    std::uint64_t mask = bound - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    std::uint64_t draw = next_u64() & mask;
    while (draw >= bound) draw = next_u64() & mask;
    return draw;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return next_double() < p; }

  /// Derives an independent child generator (for per-flow streams).
  // bbrnash-lint: allow(process-control) -- fork() here splits a PRNG
  // stream deterministically; it is not the process-control syscall.
  Rng fork() noexcept { return Rng{next_u64()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace bbrnash
