// Minimal Unix-domain socket plumbing for the oracle daemon (`bbrnash
// serve`) and its clients. Every raw socket/signal syscall the serve stack
// needs lives here behind a narrow, error-string API, so the
// `process-control` lint rule can keep the rest of the tree syscall-free:
// this translation unit and src/exp/fabric.cpp are the only places such
// calls are annotated as intentional.
//
// Robustness contracts:
//   * ipc_listen() detects a STALE socket file (the leftover of a daemon
//     that was SIGKILLed and never unlinked its endpoint): if bind() fails
//     with EADDRINUSE it probes the path with a connect(); a refused
//     connection means nobody is accepting, so the stale file is removed
//     and the bind retried. A successful probe means a live daemon owns
//     the path, which is reported as an error rather than clobbered.
//   * ipc_write_all()/ipc_write_line() send with MSG_NOSIGNAL, so a
//     disconnected peer yields a `false` return (EPIPE) instead of a
//     process-killing SIGPIPE — callers turn that into typed incident
//     records.
//   * IpcLineReader splits a nonblocking byte stream into complete lines
//     without ever blocking the caller's poll loop.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bbrnash {

/// Creates, binds, and listens on a Unix-domain stream socket at `path`.
/// Returns the listening fd (>= 0), or -1 with a description in *error.
/// Performs stale-socket detection (see file comment); refuses to displace
/// a live daemon.
[[nodiscard]] int ipc_listen(const std::string& path, std::string* error);

/// One blocking connect attempt to the daemon at `path`. Returns the
/// connected fd (>= 0), or -1 with a description in *error. Retry/backoff
/// policy belongs to the caller (OracleClient), not here.
[[nodiscard]] int ipc_connect(const std::string& path, std::string* error);

/// accept() one pending connection on a listening fd. Returns the client
/// fd, or -1 when nothing is pending (EAGAIN on a nonblocking listener)
/// or on error.
[[nodiscard]] int ipc_accept(int listen_fd);

/// Closes `fd` if it is >= 0 (EINTR-safe, idempotent for -1).
void ipc_close(int fd);

/// Removes the socket file at `path` (daemon teardown). Missing files are
/// not an error.
void ipc_unlink(const std::string& path);

/// Marks `fd` O_NONBLOCK.
void ipc_set_nonblocking(int fd);

/// Writes all `n` bytes, retrying on EINTR and short writes. Returns false
/// on any hard error — in particular EPIPE from a vanished peer, which is
/// delivered as a return value (MSG_NOSIGNAL), never as a signal.
[[nodiscard]] bool ipc_write_all(int fd, const char* data, std::size_t n);

/// ipc_write_all() of `line` plus a trailing '\n'.
[[nodiscard]] bool ipc_write_line(int fd, const std::string& line);

/// Nonblocking write of as much of `data` as the socket accepts right now.
/// Returns the byte count consumed (>= 0), or -1 on a hard error (EPIPE,
/// reset). 0 means "try again later" (EAGAIN), not end of stream.
[[nodiscard]] long ipc_write_some(int fd, const char* data, std::size_t n);

/// Incremental line splitter over a nonblocking socket. drain() consumes
/// whatever is readable right now; complete lines ('\n'-terminated, the
/// terminator stripped) are appended to `out`. Returns false once the
/// peer has closed (EOF) or the connection errored; a partial trailing
/// line is kept in the buffer across calls.
class IpcLineReader {
 public:
  /// Reads until EAGAIN/EOF. Appends complete lines to *out. Returns true
  /// while the connection is still open.
  [[nodiscard]] bool drain(int fd, std::vector<std::string>* out);

  /// Bytes of an incomplete trailing line currently buffered.
  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  void flush_lines(std::vector<std::string>* out);

  std::string buf_;
};

}  // namespace bbrnash
