// Windowed extremum filters used by BBR-family congestion controls.
//
// Two implementations are provided:
//   * WindowedFilter     — exact, monotone-ring-based; O(1) amortized and
//                          allocation-free once the ring reaches its
//                          high-water size.
//   * KernelMinmaxFilter — the Linux kernel's 3-slot approximation
//                          (lib/minmax.c), kept for fidelity experiments.
// BBR in this repo uses WindowedFilter; a test cross-checks the two.
#pragma once

#include <cstdint>

#include "util/ring_deque.hpp"
#include "util/units.hpp"

namespace bbrnash {

enum class FilterKind { kMax, kMin };

/// Exact moving max/min over a sliding time window.
///
/// Samples must be inserted with non-decreasing timestamps. `best()` returns
/// the extremum among samples within `window` of the most recent update
/// time. When empty, returns the supplied default value.
template <typename T>
class WindowedFilter {
 public:
  WindowedFilter(FilterKind kind, TimeNs window, T default_value)
      : kind_(kind), window_(window), default_(default_value) {}

  void update(TimeNs now, T value) {
    now_ = now;
    // Pop samples that this one dominates: they can never be the extremum
    // again while `value` is in the window.
    while (!samples_.empty() && !beats(samples_.back().value, value)) {
      samples_.pop_back();
    }
    samples_.push_back({now, value});
    expire(now);
  }

  /// Advances the clock without adding a sample (expires stale entries).
  void advance(TimeNs now) {
    now_ = now;
    expire(now);
  }

  [[nodiscard]] T best() const {
    return samples_.empty() ? default_ : samples_.front().value;
  }

  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Timestamp of the current extremum sample (kTimeNone when empty).
  [[nodiscard]] TimeNs best_time() const {
    return samples_.empty() ? kTimeNone : samples_.front().time;
  }

  void reset() { samples_.clear(); }

  /// Pre-sizes the sample ring (a perf knob: pools reach their high-water
  /// capacity before measurement instead of growing mid-run).
  void reserve(std::size_t n) { samples_.reserve(n); }

  void set_window(TimeNs window) {
    window_ = window;
    expire(now_);
  }
  [[nodiscard]] TimeNs window() const { return window_; }

 private:
  struct Sample {
    TimeNs time;
    T value;
  };

  // True when `a` strictly dominates `b` for this filter's direction.
  [[nodiscard]] bool beats(T a, T b) const {
    return kind_ == FilterKind::kMax ? a > b : a < b;
  }

  void expire(TimeNs now) {
    while (!samples_.empty() && samples_.front().time + window_ < now) {
      samples_.pop_front();
    }
  }

  FilterKind kind_;
  TimeNs window_;
  T default_;
  TimeNs now_ = 0;
  RingDeque<Sample> samples_;
};

/// The Linux kernel's 3-slot windowed max estimator (lib/minmax.c),
/// specialized to max (what tcp_bbr uses for bandwidth).
///
/// It is an approximation: it keeps the best, second-best and third-best
/// samples by recency and ages them out as the window slides.
template <typename T>
class KernelMinmaxFilter {
 public:
  KernelMinmaxFilter(TimeNs window, T default_value)
      : window_(window), default_(default_value) {}

  void update_max(TimeNs now, T value) {
    if (empty_ || value >= slots_[0].value ||
        now - slots_[2].time > window_) {
      reset_to(now, value);
      return;
    }
    if (value >= slots_[1].value) {
      slots_[2] = {now, value};
      slots_[1] = slots_[2];
    } else if (value >= slots_[2].value) {
      slots_[2] = {now, value};
    }
    subwin_update(now, value);
  }

  [[nodiscard]] T best() const { return empty_ ? default_ : slots_[0].value; }

 private:
  struct Slot {
    TimeNs time = 0;
    T value{};
  };

  void reset_to(TimeNs now, T value) {
    slots_[0] = slots_[1] = slots_[2] = {now, value};
    empty_ = false;
  }

  // Port of minmax_subwin_update: rotate slots as the window slides.
  void subwin_update(TimeNs now, T value) {
    const TimeNs dt = now - slots_[0].time;
    if (dt > window_) {
      // Best sample expired: promote and record the new sample last.
      slots_[0] = slots_[1];
      slots_[1] = slots_[2];
      slots_[2] = {now, value};
      if (now - slots_[0].time > window_) {
        slots_[0] = slots_[1];
        slots_[1] = slots_[2];
      }
    } else if (slots_[1].time == slots_[0].time && dt > window_ / 4) {
      slots_[2] = slots_[1] = {now, value};
    } else if (slots_[2].time == slots_[1].time && dt > window_ / 2) {
      slots_[2] = {now, value};
    }
  }

  TimeNs window_;
  T default_;
  Slot slots_[3];
  bool empty_ = true;
};

}  // namespace bbrnash
