// The single registry of bbrnash wire/persistence schema tags.
//
// Every JSONL record stream and JSON report this codebase writes carries a
// `bbrnash-<stream>-vN` tag so readers can reject records they do not
// understand (the fabric skips foreign checkpoint lines, the serve daemon
// rejects mismatched oracle snapshots, the bench baselines refuse to
// compare across format bumps). Those tags used to be hand-duplicated
// string literals in every writer — exactly the drift surface a
// reproducibility claim cannot afford: a reader and writer disagreeing by
// one character silently partitions the data instead of failing loudly.
//
// This header is the only place a schema string may be spelled. The lint's
// schema-registry pass (tools/lint/lint_passes.cpp, DESIGN.md §8) enforces
// it three ways: a raw `bbrnash-*-vN` literal in any other file under
// src/ or bench/ is a `schema-literal` violation; a duplicate entry here
// is a `schema-registry` violation (bump the version instead); and an
// entry no scanned file uses is a `schema-registry` violation too, so the
// registry cannot accumulate dead tags. Tests are exempt from the literal
// rule — pinning exact wire bytes in a test is the point of the test.
//
// To add a stream: register `kSchema<Stream>` here (one line, value
// `bbrnash-<stream>-v1`), then reference the constant from the writer and
// every reader. To change a format incompatibly: bump the `-vN` suffix in
// place — readers keyed on the old constant then reject new records at
// parse time instead of misinterpreting them.
#pragma once

#include <string_view>

namespace bbrnash {

/// Flight-recorder ring dumps (src/sim/flight_recorder.cpp).
inline constexpr std::string_view kSchemaFlight = "bbrnash-flight-v1";

/// Fabric sweep checkpoint records (src/exp/fabric.cpp).
inline constexpr std::string_view kSchemaFabric = "bbrnash-fabric-v1";

/// Fabric end-of-run stats summary records (src/exp/fabric.cpp).
inline constexpr std::string_view kSchemaFabricStats =
    "bbrnash-fabric-stats-v1";

/// Payoff-oracle snapshot records (src/exp/oracle.cpp; also served and
/// re-persisted by the daemon in src/exp/serve.cpp).
inline constexpr std::string_view kSchemaOracle = "bbrnash-oracle-v1";

/// Serve-daemon request-journal records (src/exp/serve.cpp).
inline constexpr std::string_view kSchemaServe = "bbrnash-serve-v1";

/// Serve-daemon stats snapshot records (src/exp/serve.cpp).
inline constexpr std::string_view kSchemaServeStats =
    "bbrnash-serve-stats-v1";

/// Simulator-core perf report (bench/bench_perf_simcore.cpp).
inline constexpr std::string_view kSchemaSimcorePerf =
    "bbrnash-simcore-perf-v1";

/// Simulator-core perf baseline records (bench/bench_perf_simcore.cpp).
inline constexpr std::string_view kSchemaSimcoreBaseline =
    "bbrnash-simcore-baseline-v1";

/// Oracle-query perf report (bench/bench_oracle_queries.cpp).
inline constexpr std::string_view kSchemaOraclePerf =
    "bbrnash-oracle-perf-v1";

/// Oracle-query perf baseline records (bench/bench_oracle_queries.cpp).
inline constexpr std::string_view kSchemaOracleBaseline =
    "bbrnash-oracle-baseline-v1";

/// bbrnash-lint --json report envelope (tools/lint/lint_core.cpp).
inline constexpr std::string_view kSchemaLintReport =
    "bbrnash-lint-report-v1";

}  // namespace bbrnash
