// Streaming and batch summary statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace bbrnash {

/// Welford online accumulator: mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A time-weighted average: integrates a piecewise-constant signal.
/// Used for average queue occupancy / queuing delay, which the paper's
/// model reasons about (b_b, b_c are *time-averaged* buffer shares).
class TimeWeightedAverage {
 public:
  /// Records that the signal had `value` from the last update until `now`.
  void update(double now, double value) noexcept {
    if (has_last_) {
      const double dt = now - last_time_;
      if (dt > 0) {
        integral_ += last_value_ * dt;
        span_ += dt;
      }
    }
    last_time_ = now;
    last_value_ = value;
    has_last_ = true;
  }

  [[nodiscard]] double average() const noexcept {
    return span_ > 0 ? integral_ / span_ : 0.0;
  }
  [[nodiscard]] double observed_span() const noexcept { return span_; }
  [[nodiscard]] double last_value() const noexcept { return last_value_; }

 private:
  double integral_ = 0.0;
  double span_ = 0.0;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  bool has_last_ = false;
};

/// Batch percentile (linear interpolation, like numpy's default).
/// `q` in [0,1]. Sorts a copy; fine for end-of-run reporting.
double percentile(std::vector<double> samples, double q);

/// Mean of a sample vector (0 for empty input).
double mean_of(const std::vector<double>& samples);

/// Jain's fairness index: (Σx)² / (n·Σx²); 1 = perfectly fair.
double jain_fairness(const std::vector<double>& shares);

}  // namespace bbrnash
