// Units and conversions used throughout bbrnash.
//
// Conventions (documented once here, relied on everywhere):
//   * Simulated time is int64_t nanoseconds (`TimeNs`). 2^63 ns ~ 292 years,
//     so overflow is not a practical concern for multi-minute simulations.
//   * Data volumes are int64_t bytes (`Bytes`).
//   * Rates are double bytes/second (`BytesPerSec`). Rates enter the
//     simulator only to compute integer serialization times, so the double
//     representation never accumulates error inside the event loop.
#pragma once

#include <cstdint>

namespace bbrnash {

using TimeNs = std::int64_t;
using Bytes = std::int64_t;
using BytesPerSec = double;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

/// Sentinel for "no time" / unset timestamps.
inline constexpr TimeNs kTimeNone = -1;

/// Largest representable time; used as "infinitely far in the future".
inline constexpr TimeNs kTimeInf = INT64_MAX;

constexpr TimeNs from_us(double us) noexcept {
  return static_cast<TimeNs>(us * static_cast<double>(kNsPerUs));
}
constexpr TimeNs from_ms(double ms) noexcept {
  return static_cast<TimeNs>(ms * static_cast<double>(kNsPerMs));
}
constexpr TimeNs from_sec(double sec) noexcept {
  return static_cast<TimeNs>(sec * static_cast<double>(kNsPerSec));
}

constexpr double to_us(TimeNs t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kNsPerUs);
}
constexpr double to_ms(TimeNs t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kNsPerMs);
}
constexpr double to_sec(TimeNs t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

/// Megabits/second -> bytes/second. The paper quotes link speeds in Mbps.
constexpr BytesPerSec mbps(double mbits_per_sec) noexcept {
  return mbits_per_sec * 1e6 / 8.0;
}

/// Bytes/second -> megabits/second (for reporting in the paper's units).
constexpr double to_mbps(BytesPerSec rate) noexcept {
  return rate * 8.0 / 1e6;
}

/// Bandwidth-delay product in bytes for a link of `rate` and base RTT `rtt`.
constexpr Bytes bdp_bytes(BytesPerSec rate, TimeNs rtt) noexcept {
  return static_cast<Bytes>(rate * to_sec(rtt));
}

/// Time to serialize `n` bytes at `rate`, rounded up to whole ns so that a
/// busy server never finishes "early" and the queue drains conservatively.
/// A non-positive rate reads as "infinitely slow" (a far-future finite time,
/// never the UB of casting inf to an integer).
constexpr TimeNs serialization_time(Bytes n, BytesPerSec rate) noexcept {
  if (rate <= 0.0) return kTimeInf / 4;
  const double t = static_cast<double>(n) / rate * static_cast<double>(kNsPerSec);
  if (t >= static_cast<double>(kTimeInf / 4)) return kTimeInf / 4;
  const auto whole = static_cast<TimeNs>(t);
  return (static_cast<double>(whole) < t) ? whole + 1 : whole;
}

}  // namespace bbrnash
