// RingDeque: a flat circular buffer with deque semantics for the
// simulator's per-packet hot paths.
//
// std::deque allocates a node per block (and libstdc++'s 512-byte blocks
// mean roughly one allocation per handful of packets), and std::map /
// std::set allocate a node per element. On the packet hot path those node
// allocations dominate the profile. RingDeque keeps elements in one
// contiguous power-of-two array indexed modulo capacity: push/pop at
// either end are O(1) with no allocation once the buffer has reached its
// high-water size, and operator[] is a single masked index (the sender's
// seq -> record lookup). Growth doubles the buffer and linearizes the
// contents, amortized O(1).
//
// Restricted to trivially-copyable T on purpose: relocation is plain
// assignment, destruction is a no-op, and pop_front is just a head bump —
// exactly the packet/record/sample types the simulator stores.
#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace bbrnash {

template <typename T>
class RingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingDeque is specialized for trivially-copyable elements");

 public:
  RingDeque() = default;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Element i positions from the front. Pre: i < size().
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) & mask_];
  }

  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = v;
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  /// Drops all elements; keeps the buffer (no allocation on refill).
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Pre-sizes the buffer to hold at least `n` elements.
  void reserve(std::size_t n) {
    if (n > buf_.size()) grow_to(ceil_pow2(n));
  }

 private:
  static std::size_t ceil_pow2(std::size_t n) {
    std::size_t p = kMinCapacity;
    while (p < n) p <<= 1;
    return p;
  }

  void grow() { grow_to(buf_.empty() ? kMinCapacity : buf_.size() * 2); }

  // Rebuilds the buffer at `cap` slots with the contents linearized at
  // index 0 (so the head wrap restarts from a clean offset).
  void grow_to(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = buf_.size() - 1;
  }

  static constexpr std::size_t kMinCapacity = 16;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace bbrnash
