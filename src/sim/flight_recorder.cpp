#include "sim/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/jsonl.hpp"
#include "util/schemas.hpp"

namespace bbrnash {

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kInject:
      return "inject";
    case FlightEventKind::kQueueDrop:
      return "queue-drop";
    case FlightEventKind::kDeliver:
      return "deliver";
    case FlightEventKind::kCcSnapshot:
      return "cc-snapshot";
    case FlightEventKind::kRateChange:
      return "rate-change";
    case FlightEventKind::kViolation:
      return "violation";
    case FlightEventKind::kNote:
      return "note";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity, std::string dump_path)
    : ring_(std::max<std::size_t>(capacity, 1)), path_(std::move(dump_path)) {}

void FlightRecorder::dump(std::string_view trigger, std::string_view reason,
                          std::uint64_t seed) noexcept {
  try {
    std::ofstream file;
    const bool to_file = !path_.empty();
    if (to_file) {
      file.open(path_, std::ios::trunc);
      if (!file) {
        std::fprintf(stderr,
                     "flight-recorder: cannot open %s for writing; dump lost\n",
                     path_.c_str());
        return;
      }
    }
    auto emit = [&](const std::string& line) {
      if (to_file) {
        file << line << '\n';
      } else {
        std::fprintf(stderr, "%s\n", line.c_str());
      }
    };

    JsonlRecord meta;
    meta.set("type", "meta");
    meta.set("schema", kSchemaFlight);
    meta.set("trigger", std::string{trigger});
    meta.set("reason", std::string{reason});
    meta.set("seed", seed);
    meta.set("events_recorded", total_);
    meta.set("events_dumped", static_cast<std::uint64_t>(size()));
    meta.set("ring_capacity", static_cast<std::uint64_t>(ring_.size()));
    emit(meta.encode());

    const std::size_t n = size();
    const std::uint64_t start = total_ - n;  // oldest retained event index
    for (std::size_t i = 0; i < n; ++i) {
      const FlightEvent& e =
          ring_[static_cast<std::size_t>((start + i) % ring_.size())];
      JsonlRecord rec;
      rec.set("type", "event");
      rec.set("t", static_cast<std::uint64_t>(e.t));
      rec.set("kind", to_string(e.kind));
      rec.set("flow", static_cast<std::uint64_t>(e.flow));
      rec.set("a", e.a);
      rec.set("b", e.b);
      emit(rec.encode());
    }
    if (to_file) file.flush();
    dumped_ = true;
  } catch (...) {
    // Best effort only: the dump runs on failure paths, often with an
    // exception already in flight, so swallowing is the safe choice.
    std::fprintf(stderr, "flight-recorder: dump failed\n");
  }
}

}  // namespace bbrnash
