// Crash flight recorder: a fixed-size ring of recent simulation events.
//
// While a run is instrumented (see AuditConfig::recorder_events) the
// experiment layer feeds the recorder packet injections, queue drops,
// deliveries and periodic CC state snapshots. On any failure — invariant
// trip, watchdog fire, uncaught exception — the ring is dumped as JSONL
// (one meta line, then the surviving events oldest-first), giving
// post-mortem context for exactly the failures the chaos suite provokes.
//
// The dump never throws: it runs on failure paths, sometimes while an
// exception is in flight, so I/O errors degrade to a stderr note instead
// of std::terminate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace bbrnash {

enum class FlightEventKind : std::uint8_t {
  kInject,      ///< sender handed a packet to the network; a=seq, b=is_retx
  kQueueDrop,   ///< bottleneck dropped a packet; a=seq
  kDeliver,     ///< packet reached the receiver; a=seq
  kCcSnapshot,  ///< periodic CC state; a=cwnd bytes, b=srtt ns (or ~0)
  kRateChange,  ///< bottleneck rate step; a=new rate (B/s, truncated)
  kViolation,   ///< audit violation recorded; a=violation count
  kNote,        ///< free-form marker
};

[[nodiscard]] const char* to_string(FlightEventKind kind);

struct FlightEvent {
  TimeNs t = 0;
  FlightEventKind kind = FlightEventKind::kNote;
  std::uint32_t flow = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is the ring size in events (>= 1 enforced); `dump_path`
  /// empty means dump to stderr.
  explicit FlightRecorder(std::size_t capacity, std::string dump_path = "");

  void note(TimeNs t, FlightEventKind kind, std::uint32_t flow,
            std::uint64_t a = 0, std::uint64_t b = 0) {
    ring_[static_cast<std::size_t>(total_ % ring_.size())] =
        FlightEvent{t, kind, flow, a, b};
    ++total_;
  }

  /// Events ever recorded (>= size(); the ring keeps the newest).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] const std::string& dump_path() const noexcept { return path_; }
  [[nodiscard]] bool dumped() const noexcept { return dumped_; }

  /// Writes the dump: one meta record naming the trigger
  /// ("invariant-violation", "aborted-event-budget", "aborted-wall-clock",
  /// "exception", ...), then every retained event oldest-first. Each line
  /// is a flat JSON object parseable by read_jsonl. Truncates any previous
  /// dump at the same path. Never throws.
  void dump(std::string_view trigger, std::string_view reason,
            std::uint64_t seed) noexcept;

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t total_ = 0;
  std::string path_;
  bool dumped_ = false;
};

}  // namespace bbrnash
