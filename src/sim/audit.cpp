#include "sim/audit.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace bbrnash {

namespace {

/// Violations past this cap add nothing to a diagnosis (the first one is
/// what trips the run) but could balloon memory on a badly broken build.
constexpr std::size_t kMaxViolations = 16;

std::string flow_prefix(TimeNs t, std::size_t flow) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "audit t=%.3fs flow %zu: ", to_sec(t), flow);
  return buf;
}

}  // namespace

void AuditConfig::validate() const {
  if (enabled && sample_period <= 0) {
    throw std::invalid_argument{"audit sample_period must be > 0"};
  }
  if (goodput_slack < 1.0) {
    throw std::invalid_argument{"audit goodput_slack must be >= 1"};
  }
  if (fail_at != kTimeNone && fail_at < 0) {
    throw std::invalid_argument{"audit fail_at must be >= 0 (or kTimeNone)"};
  }
}

ConservationAudit::ConservationAudit(const AuditConfig& cfg,
                                     std::size_t num_flows)
    : cfg_(cfg),
      num_flows_(num_flows),
      injected_(num_flows, 0),
      access_pending_(num_flows, 0),
      prev_flows_(num_flows) {
  cfg_.validate();
  sample_.flows.resize(num_flows);
}

const std::string& ConservationAudit::first_violation() const {
  static const std::string empty;
  return violations_.empty() ? empty : violations_.front();
}

void ConservationAudit::add_violation(std::string message) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(message));
  }
}

bool ConservationAudit::check() {
  const AuditSample& s = sample_;
  const std::size_t before = violations_.size();
  ++samples_checked_;

  if (cfg_.fail_at != kTimeNone && !self_test_fired_ && s.t >= cfg_.fail_at) {
    self_test_fired_ = true;
    add_violation("audit self-test: injected violation at t=" +
                  std::to_string(s.t) + " ns (fail_at=" +
                  std::to_string(cfg_.fail_at) + ")");
  }

  // Clock monotonicity: samples are scheduled at strictly increasing times.
  if (prev_t_ != kTimeNone && s.t <= prev_t_) {
    add_violation("audit: non-monotone sample clock (t=" +
                  std::to_string(s.t) + " after t=" + std::to_string(prev_t_) +
                  ")");
  }
  if (s.bytes_served < prev_bytes_served_) {
    add_violation("audit: link bytes_served decreased (" +
                  std::to_string(s.bytes_served) + " after " +
                  std::to_string(prev_bytes_served_) + ")");
  }

  // Queue bounds and internal consistency.
  if (s.queue_bytes > s.buffer_bytes) {
    add_violation("audit t=" + std::to_string(s.t) +
                  ": queue occupancy exceeds buffer (" +
                  std::to_string(s.queue_bytes) + " > " +
                  std::to_string(s.buffer_bytes) + " bytes)");
  }
  if (s.queue_bytes < 0) {
    add_violation("audit: negative queue occupancy (" +
                  std::to_string(s.queue_bytes) + ")");
  }
  if (s.queue_flow_bytes_sum != s.queue_bytes) {
    add_violation("audit t=" + std::to_string(s.t) +
                  ": per-flow queue occupancies do not sum to the total (" +
                  std::to_string(s.queue_flow_bytes_sum) +
                  " != " + std::to_string(s.queue_bytes) + ")");
  }

  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    const FlowAuditSample& f = s.flows[i];
    const FlowAuditSample& p = prev_flows_[i];

    // Data-path conservation: every packet the sender injected is exactly
    // one of {delivered, dropped, still in flight somewhere}, and every
    // duplicate adds one to the right-hand side.
    const std::uint64_t data_in = f.injected + f.stage_duplicated;
    const std::uint64_t data_out = f.delivered + f.stage_dropped +
                                   f.queue_dropped + f.access_pending +
                                   f.stage_pending + f.queue_packets +
                                   f.fwd_pending;
    if (data_in != data_out) {
      add_violation(flow_prefix(s.t, i) + "data-path conservation broken: " +
                    "injected+dup=" + std::to_string(data_in) +
                    " != delivered+dropped+in_flight=" +
                    std::to_string(data_out) + " (injected=" +
                    std::to_string(f.injected) + " dup=" +
                    std::to_string(f.stage_duplicated) + " delivered=" +
                    std::to_string(f.delivered) + " stage_drop=" +
                    std::to_string(f.stage_dropped) + " queue_drop=" +
                    std::to_string(f.queue_dropped) + " access=" +
                    std::to_string(f.access_pending) + " stage_pend=" +
                    std::to_string(f.stage_pending) + " queued=" +
                    std::to_string(f.queue_packets) + " fwd_pend=" +
                    std::to_string(f.fwd_pending) + ")");
    }

    // ACK-path conservation.
    const std::uint64_t ack_in = f.acks_emitted + f.ack_stage_duplicated;
    const std::uint64_t ack_out = f.acks_received + f.ack_stage_dropped +
                                  f.ack_stage_pending + f.rev_pending;
    if (ack_in != ack_out) {
      add_violation(flow_prefix(s.t, i) + "ACK-path conservation broken: " +
                    "emitted+dup=" + std::to_string(ack_in) +
                    " != received+dropped+in_flight=" +
                    std::to_string(ack_out));
    }
    if (f.acks_emitted != f.delivered) {
      add_violation(flow_prefix(s.t, i) +
                    "receiver emitted " + std::to_string(f.acks_emitted) +
                    " ACKs for " + std::to_string(f.delivered) + " packets");
    }

    // Control-state sanity: NaN/Inf guards and physical bounds.
    if (f.cwnd <= 0) {
      add_violation(flow_prefix(s.t, i) + "cwnd is not positive (" +
                    std::to_string(f.cwnd) + ")");
    }
    if (!std::isfinite(f.pacing_rate) || f.pacing_rate < 0.0) {
      add_violation(flow_prefix(s.t, i) + "pacing rate is not finite/>=0 (" +
                    std::to_string(f.pacing_rate) + ")");
    }
    // sRTT can never undercut the propagation floor: every sample it
    // averages is base_rtt (2x one-way delay) plus queueing/jitter.
    if (f.srtt != kTimeNone && f.srtt < f.base_rtt) {
      add_violation(flow_prefix(s.t, i) + "sRTT below the propagation floor (" +
                    std::to_string(f.srtt) + " < " +
                    std::to_string(f.base_rtt) + " ns)");
    }

    // Monotone counters: cumulative quantities never decrease.
    if (f.cum_next < p.cum_next) {
      add_violation(flow_prefix(s.t, i) + "cumulative sequence went backwards");
    }
    if (f.delivered_bytes < p.delivered_bytes) {
      add_violation(flow_prefix(s.t, i) + "delivered bytes decreased");
    }
    if (f.delivered < p.delivered || f.queue_dropped < p.queue_dropped ||
        f.retransmits < p.retransmits || f.rtos < p.rtos) {
      add_violation(flow_prefix(s.t, i) + "a cumulative counter decreased");
    }
    prev_flows_[i] = f;
  }

  prev_t_ = s.t;
  prev_bytes_served_ = s.bytes_served;
  return violations_.size() > before;
}

void ConservationAudit::check_final_goodput(std::uint32_t flow,
                                            double goodput_bps,
                                            double peak_bps) {
  if (!std::isfinite(goodput_bps) || goodput_bps < 0.0) {
    add_violation("audit: flow " + std::to_string(flow) +
                  " goodput is not finite/>=0 (" +
                  std::to_string(goodput_bps) + ")");
    return;
  }
  if (goodput_bps > peak_bps * cfg_.goodput_slack + 1e-9) {
    add_violation("audit: flow " + std::to_string(flow) +
                  " goodput exceeds the peak bottleneck rate (" +
                  std::to_string(goodput_bps) + " > " +
                  std::to_string(peak_bps * cfg_.goodput_slack) + " B/s)");
  }
}

}  // namespace bbrnash
