// Discrete-event core: a time-ordered queue of pooled event records.
//
// Ordering guarantee: events fire in non-decreasing time; events scheduled
// for the same instant fire in the order they were scheduled (FIFO via a
// monotone sequence number). This makes simulations fully deterministic.
//
// Representation: a timing wheel with a far-horizon heap overflow.
//
//   * The dense near-horizon band (pacing ticks, serialization times, ACK
//     deliveries, propagation delays — everything within ~67 ms) lives in
//     a 16384-bucket timing wheel with 4096 ns granularity. A bucket is an
//     intrusive singly-linked chain threaded through a node array that
//     parallels the payload pool, so scheduling is O(1): compute the
//     bucket, push the chain head, set an occupancy bit.
//   * Events at or beyond the wheel horizon (RTO timers, rtprop probes,
//     measurement boundaries) overflow into a small 4-ary min-heap of
//     packed 16-byte keys — the same cache-aligned sift machinery that
//     used to hold *all* events, now holding only the sparse far band.
//     As the wheel cursor advances, heap events that fall inside the
//     horizon migrate into their buckets, so every event is fired from
//     the wheel path. Invariant: heap events always live at a bucket the
//     cursor has not reached.
//   * The bucket the cursor is parked on is kept *loaded*: its chain is
//     pulled into a reusable scratch vector, sorted by the exact total
//     order (when, then schedule sequence), and drained front to back.
//     Events scheduled at or before the cursor's bucket (same-instant
//     chains, or a fresh event behind an eagerly advanced cursor) are
//     inserted into the scratch's pending region at their sorted
//     position, which preserves the exact heap ordering semantics:
//     among pending events the fire order is always (when, sequence).
//
// Dispatch runs the callable in place: payload slots live in fixed-size
// chunks that never move once allocated, so run_one() fires the event
// directly from pooled storage and recycles the slot after the callable
// returns (never before — the callable's own captures live in that slot).
// The cold Popped/pop() path still copies the payload out first.
//
// Each payload slot embeds its callable in a fixed 64-byte inline buffer,
// so the packet hot path (arrivals, departures, ACK deliveries, pacing
// and RTO timers — all of which capture at most a packet plus a couple of
// pointers) schedules and fires events with ZERO heap allocations in
// steady state: slots are recycled in place and every auxiliary array
// (scratch, chains, free list, heap keys) stops growing once the
// simulation reaches its high-water event count. Callables that are
// larger than the inline buffer or not trivially copyable are boxed on
// the heap (cold paths only: test lambdas, callables routed through
// std::function).
//
// Cancellation is lazy: cancelled entries stay where they are (scratch,
// chain, or heap) and are skipped when they reach the scratch front. Only
// events scheduled via schedule_cancellable() pay the hash-set
// bookkeeping; the hot path (packet arrivals/departures, which are never
// cancelled) stays allocation-free. Cancellation is keyed on the globally
// unique schedule sequence, never the pool slot, so a stale EventId whose
// slot has been recycled to a new event can never kill the new event, and
// double-cancel is a counted no-op. size() reports only live entries
// (watchdog diagnostics must not overreport); raw_size() includes the
// lazily-cancelled dead entries still occupying pool slots.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace bbrnash {

using EventId = std::uint64_t;

/// Inline storage per event payload. Sized for the largest hot-path
/// callable: a delayed delivery capturing a DelayLine pointer plus a
/// Packet-with-sojourn payload (8 + 56 bytes).
inline constexpr std::size_t kEventInlineBytes = 64;

class EventQueue {
 private:
  /// What the wheel and heap order on: 16 bytes. meta packs
  /// (sequence << kSeqShift) | (slot << 1) | cancellable — the sequence
  /// occupies the high bits, so comparing meta words compares sequences
  /// (slot and flag only differ when sequences differ, and sequences are
  /// unique).
  struct Key {
    TimeNs when;
    std::uint64_t meta;
  };
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(sizeof(Key) == 16);

  /// meta layout: bit 0 = cancellable, bits 1..24 = payload-slot index
  /// (16M concurrent events), bits 25..63 = schedule sequence (5e11
  /// events per simulation).
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSeqShift = kSlotBits + 1;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

  /// One pooled payload: the callable plus its dispatch thunks. Written at
  /// schedule(), fired in place at dispatch, recycled through free_.
  /// Trivially copyable by construction (inline callables are restricted
  /// to trivially-copyable types), so the cold pop() copy-out is a plain
  /// assignment.
  struct Slot {
    void (*invoke)(std::byte*);
    void (*cleanup)(std::byte*);  ///< frees a boxed callable; null = inline
    alignas(std::max_align_t) std::byte storage[kEventInlineBytes];
  };
  static_assert(std::is_trivially_copyable_v<Slot>);

  /// Releases a dispatched slot's boxed callable at scope exit, so the box
  /// is freed even when the callable throws (a throwing event — e.g. an
  /// injected chaos fault — unwinds through the run loop after its key
  /// was already consumed, where no other owner would clean it).
  struct FireGuard {
    Slot& s;
    ~FireGuard() {
      if (s.cleanup != nullptr) s.cleanup(s.storage);
    }
  };

  /// run_one() fires callables in place from pooled storage; the slot must
  /// only return to the free list after the callable (whose captures live
  /// in that storage) finishes — including via an exception unwind.
  struct DispatchGuard {
    EventQueue& q;
    Slot& s;
    std::uint32_t idx;
    ~DispatchGuard() {
      if (s.cleanup != nullptr) s.cleanup(s.storage);
      q.free_.push_back(idx);
    }
  };

 public:
  EventQueue() {
    heads_.assign(kWheelSize, kNil);
    bitmap_.assign(kWheelSize / 64, 0);
  }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  ~EventQueue() {
    for (std::size_t i = drain_; i < scratch_.size(); ++i) {
      release_boxed(scratch_[i]);
    }
    for (std::uint32_t head : heads_) {
      for (std::uint32_t node = head; node != kNil; node = nodes_[node].next) {
        Slot& s = slot_ref(nodes_[node].slot);
        if (s.cleanup != nullptr) s.cleanup(s.storage);
      }
    }
    for (std::size_t i = 0; i < heap_n_; ++i) release_boxed(root_[i]);
    ::operator delete(base_, std::align_val_t{kLineBytes});
  }

  /// Schedules a non-cancellable event at absolute time `when`.
  template <typename F>
  void schedule(TimeNs when, F&& fn) {
    insert_key(when, make_meta(false), fill_slot(std::forward<F>(fn)));
  }

  /// Schedules a cancellable event; returns a handle for cancel().
  template <typename F>
  EventId schedule_cancellable(TimeNs when, F&& fn) {
    const std::uint64_t meta = make_meta(true);
    const EventId seq = meta >> kSeqShift;
    pending_.insert(seq);
    insert_key(when, meta, fill_slot(std::forward<F>(fn)));
    return seq;
  }

  /// Cancels a pending cancellable event. Cancelling an already-fired,
  /// already-cancelled, or unknown id is a harmless no-op: ids are the
  /// globally unique schedule sequence (not the recycled pool slot), so a
  /// stale id can never match a newer event, and the erase-guarded dead_
  /// counter cannot drift (so size() cannot underflow). The dead record
  /// stays pooled until it reaches the scratch front (lazy deletion).
  void cancel(EventId id) {
    if (pending_.erase(id) != 0) ++dead_;
  }

  [[nodiscard]] bool empty() { return !ensure_next(); }

  /// Number of LIVE events (excludes lazily-cancelled dead entries, so
  /// watchdog diagnostics never overreport the backlog).
  [[nodiscard]] std::size_t size() const { return n_ - dead_; }

  /// Number of pool slots currently occupied, dead entries included.
  [[nodiscard]] std::size_t raw_size() const { return n_; }

  /// Pre-sizes the event pool to `n` slots so neither the payload chunks
  /// nor the bookkeeping arrays reallocate while the simulation grows
  /// toward its high-water event count.
  void reserve(std::size_t n) {
    while (chunks_.size() * kChunkSlots < n) add_chunk();
    free_.reserve(n);
    scratch_.reserve(std::min<std::size_t>(n, 1024));
  }

  /// Time of the next live event; kTimeInf when empty.
  [[nodiscard]] TimeNs next_time() {
    return ensure_next() ? scratch_[drain_].when : kTimeInf;
  }

  /// A popped event: fire it with fn() (at most once). If destroyed
  /// unfired, any boxed callable is released.
  class Popped {
   public:
    Popped(const Popped&) = delete;
    Popped& operator=(const Popped&) = delete;
    Popped(Popped&& other) noexcept
        : when(other.when), slot_(other.slot_), live_(other.live_) {
      other.live_ = false;
    }
    Popped& operator=(Popped&&) = delete;
    ~Popped() {
      if (live_ && slot_.cleanup != nullptr) slot_.cleanup(slot_.storage);
    }

    /// Invokes the event's callable. Pre: not already fired. The payload
    /// was copied out of the pool at pop(), so the callable may freely
    /// schedule new events (growing the pool) while it runs.
    void fn() {
      assert(live_ && "event already fired");
      live_ = false;
      FireGuard guard{slot_};
      slot_.invoke(slot_.storage);
    }

    TimeNs when = 0;

   private:
    friend class EventQueue;
    Popped() = default;

    Slot slot_{};
    bool live_ = false;
  };

  /// Pops and returns the next live event. Pre: !empty().
  [[nodiscard]] Popped pop() {
    const bool has_next = ensure_next();
    assert(has_next && "pop() on an empty queue");
    (void)has_next;
    const Key top = scratch_[drain_++];
    --n_;
    retire(top);
    Popped out;
    out.when = top.when;
    out.slot_ = slot_ref(slot_of(top));  // copy out: callbacks may grow the pool
    out.live_ = true;
    free_.push_back(slot_of(top));
    return out;
  }

  /// Combined prune + deadline check + dispatch — the simulator run
  /// loop's one call per event. If the next live event is due at or before
  /// `deadline`, advances `clock` to its timestamp, fires it, and returns
  /// true; otherwise leaves the queue untouched and returns false. The
  /// callable runs in place from its (address-stable) pooled chunk; its
  /// slot is recycled only after it returns, so it may freely schedule new
  /// events.
  bool run_one(TimeNs deadline, TimeNs& clock) {
    if (!ensure_next()) return false;
    const Key top = scratch_[drain_];
    if (top.when > deadline) return false;
    ++drain_;
    --n_;
    retire(top);
    clock = top.when;
    Slot& s = slot_ref(slot_of(top));
    DispatchGuard guard{*this, s, slot_of(top)};
    s.invoke(s.storage);
    return true;
  }

 private:
  template <typename Fn>
  static void invoke_inline(std::byte* storage) {
    // bbrnash-lint: allow(reinterpret-cast) -- pooled-storage payload:
    // reads back the Fn placement-constructed into this slot by fill_slot;
    // launder makes the round-trip through std::byte storage well-defined.
    (*std::launder(reinterpret_cast<Fn*>(storage)))();
  }
  template <typename Fn>
  static void invoke_boxed(std::byte* storage) {
    Fn* boxed;
    std::memcpy(&boxed, storage, sizeof boxed);
    (*boxed)();
  }
  template <typename Fn>
  static void cleanup_boxed(std::byte* storage) {
    Fn* boxed;
    std::memcpy(&boxed, storage, sizeof boxed);
    delete boxed;
  }

  [[nodiscard]] static constexpr std::uint32_t slot_of(const Key& k) {
    return static_cast<std::uint32_t>((k.meta >> 1) & kSlotMask);
  }

  [[nodiscard]] std::uint64_t make_meta(bool cancellable) {
    // A sequence past 39 bits would make same-timestamp FIFO comparisons
    // wrap silently; no realistic run gets near 5e11 events, but fail
    // loudly rather than go nondeterministic.
    if (next_seq_ >> (64 - kSeqShift) != 0) {
      throw std::length_error{"event sequence space exhausted"};
    }
    return (next_seq_++ << kSeqShift) | (cancellable ? 1u : 0u);
  }

  // --- Payload pool (chunked; slots never move once allocated) ----------

  static constexpr std::size_t kChunkShift = 12;  ///< 4096 slots per chunk
  static constexpr std::size_t kChunkSlots = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSlots - 1;

  [[nodiscard]] Slot& slot_ref(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }

  void add_chunk() {
    if (chunks_.size() * kChunkSlots > kSlotMask) {
      throw std::length_error{"event pool exhausted (16M live events)"};
    }
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    nodes_.resize(chunks_.size() * kChunkSlots);
  }

  /// Takes a slot from the free list (or grows the pool) and constructs
  /// the callable into it. Returns the slot index.
  template <typename F>
  std::uint32_t fill_slot(F&& fn) {
    using Fn = std::decay_t<F>;
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      if (used_slots_ == chunks_.size() * kChunkSlots) add_chunk();
      idx = static_cast<std::uint32_t>(used_slots_++);
    }
    Slot& s = slot_ref(idx);
    constexpr bool fits_inline =
        sizeof(Fn) <= kEventInlineBytes &&
        alignof(Fn) <= alignof(std::max_align_t) &&
        std::is_trivially_copyable_v<Fn>;
    if constexpr (fits_inline) {
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      s.invoke = &invoke_inline<Fn>;
      s.cleanup = nullptr;
    } else {
      Fn* boxed = new Fn(std::forward<F>(fn));
      std::memcpy(s.storage, &boxed, sizeof boxed);
      s.invoke = &invoke_boxed<Fn>;
      s.cleanup = &cleanup_boxed<Fn>;
    }
    return idx;
  }

  /// Frees a key's boxed callable (if any) and recycles its pool slot.
  void release_slot(std::uint32_t idx) {
    Slot& s = slot_ref(idx);
    if (s.cleanup != nullptr) s.cleanup(s.storage);
    free_.push_back(idx);
  }

  /// Destructor-only: boxed cleanup without free-list bookkeeping.
  void release_boxed(const Key& k) {
    Slot& s = slot_ref(slot_of(k));
    if (s.cleanup != nullptr) s.cleanup(s.storage);
  }

  /// Strict total order: (when, schedule sequence). Sequences are unique,
  /// so ties never happen and FIFO-at-same-timestamp is exact.
  [[nodiscard]] static bool before(const Key& a, const Key& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.meta < b.meta;
  }

  // --- Timing wheel (near horizon) ---------------------------------------

  /// 16384 buckets x 4096 ns = a 67 ms horizon: wide enough that pacing
  /// ticks, serialization times, and propagation delays (tens of ms) all
  /// land directly in the wheel; only RTO-scale timers overflow to the
  /// heap. Bucket chains are threaded through nodes_ (parallel to the
  /// payload pool), so scheduling allocates nothing. The granularity is
  /// tuned so a loaded bucket holds a handful of events (sorting it is a
  /// few compares) while cursor advances stay rare relative to events.
  static constexpr std::uint64_t kBucketShift = 12;
  static constexpr std::uint64_t kWheelBits = 14;
  static constexpr std::uint64_t kWheelSize = std::uint64_t{1} << kWheelBits;
  static constexpr std::uint64_t kWheelMask = kWheelSize - 1;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    TimeNs when;
    std::uint64_t meta;
    std::uint32_t slot;  ///< == slot_of(meta); kept to avoid re-unpacking
    std::uint32_t next;
  };

  [[nodiscard]] static constexpr std::uint64_t bucket_of(TimeNs when) {
    return static_cast<std::uint64_t>(when) >> kBucketShift;
  }

  /// Routes a fresh (or heap-migrated) key to scratch, wheel, or heap.
  /// Pre for the wheel arm: wheel_pos_ < bucket_of(when) < wheel_pos_ +
  /// kWheelSize, which makes physical slot <-> absolute bucket a
  /// bijection (two in-horizon buckets congruent mod kWheelSize are
  /// equal), so a chain only ever holds one absolute bucket's events.
  void insert_key(TimeNs when, std::uint64_t meta, std::uint32_t slot) {
    const Key key{when, (meta & ~(kSlotMask << 1)) |
                            (static_cast<std::uint64_t>(slot) << 1)};
    ++n_;
    const std::uint64_t b = bucket_of(when);
    if (b <= wheel_pos_) {
      // The cursor's own bucket (same-instant chained events), or behind
      // an eagerly advanced cursor: splice into the scratch's pending
      // region at the exact (when, sequence) position. Everything already
      // drained compares strictly less (fired whens <= this when, and
      // this sequence is the largest yet issued), so the pending region
      // stays totally sorted and the global fire order is unchanged from
      // a single ordered heap.
      const auto pos = std::upper_bound(
          scratch_.begin() + static_cast<std::ptrdiff_t>(drain_),
          scratch_.end(), key,
          [](const Key& a, const Key& c) { return before(a, c); });
      scratch_.insert(pos, key);
    } else if (b - wheel_pos_ < kWheelSize) {
      chain_push(key);
    } else {
      push_heap_key(key);
    }
  }

  /// Pushes an in-horizon key onto its bucket chain. Pre: see insert_key.
  void chain_push(const Key& key) {
    const auto s =
        static_cast<std::uint32_t>(bucket_of(key.when) & kWheelMask);
    const std::uint32_t idx = slot_of(key);
    nodes_[idx] = Node{key.when, key.meta, idx, heads_[s]};
    heads_[s] = idx;
    bitmap_[s >> 6] |= std::uint64_t{1} << (s & 63);
    ++wheel_count_;
  }

  /// Smallest absolute bucket > wheel_pos_ with a non-empty chain.
  /// Pre: wheel_count_ != 0. Scans the occupancy bitmap starting just
  /// past the cursor's slot; because every chained event's bucket lies in
  /// (wheel_pos_, wheel_pos_ + kWheelSize), the first set bit in cyclic
  /// slot order is the earliest bucket.
  [[nodiscard]] std::uint64_t next_occupied_bucket() const {
    const auto start =
        static_cast<std::uint32_t>((wheel_pos_ + 1) & kWheelMask);
    const auto words = static_cast<std::uint32_t>(kWheelSize / 64);
    std::uint32_t w = start >> 6;
    std::uint64_t word = bitmap_[w] & (~std::uint64_t{0} << (start & 63));
    for (;;) {
      if (word != 0) {
        const auto s = static_cast<std::uint32_t>(
            (w << 6) + static_cast<std::uint32_t>(__builtin_ctzll(word)));
        const auto dist =
            static_cast<std::uint32_t>((s - start) & kWheelMask);
        return wheel_pos_ + 1 + dist;
      }
      w = (w + 1) & (words - 1);
      word = bitmap_[w];
    }
  }

  /// Moves the cursor to the earliest non-empty bucket, pulls that
  /// bucket's chain (plus any heap events that the advance brought inside
  /// the horizon) into scratch_, and sorts it. Pre: scratch_ is drained.
  /// Returns false when no events remain anywhere.
  bool advance_cursor() {
    scratch_.clear();
    drain_ = 0;
    std::uint64_t target;
    if (wheel_count_ != 0) {
      target = next_occupied_bucket();
      if (heap_n_ != 0) {
        const std::uint64_t hb = bucket_of(root_[0].when);
        if (hb < target) target = hb;
      }
    } else if (heap_n_ != 0) {
      // Wheel empty: rebase the cursor straight to the heap top's bucket
      // (this is how the cursor crosses long event-free gaps in O(1)).
      target = bucket_of(root_[0].when);
    } else {
      return false;
    }
    wheel_pos_ = target;
    const auto s = static_cast<std::uint32_t>(target & kWheelMask);
    std::uint32_t node = heads_[s];
    heads_[s] = kNil;
    bitmap_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
    while (node != kNil) {
      scratch_.push_back(Key{nodes_[node].when, nodes_[node].meta});
      --wheel_count_;
      node = nodes_[node].next;
    }
    // Restore the heap invariant (all heap events beyond the horizon of
    // the *new* cursor): migrate anything the advance uncovered. The heap
    // pops in time order, so these go to their exact buckets.
    while (heap_n_ != 0 &&
           bucket_of(root_[0].when) < wheel_pos_ + kWheelSize) {
      Key k;
      pop_root(k);
      if (bucket_of(k.when) == wheel_pos_) {
        scratch_.push_back(k);
      } else {
        chain_push(k);
      }
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Key& a, const Key& b) { return before(a, b); });
    return true;
  }

  /// Advances past lazily-cancelled entries until scratch_[drain_] is the
  /// earliest live event queue-wide (loading buckets as needed). Returns
  /// false when no live events exist.
  bool ensure_next() {
    for (;;) {
      while (drain_ < scratch_.size()) {
        const Key k = scratch_[drain_];
        if ((k.meta & 1) == 0 ||
            pending_.find(k.meta >> kSeqShift) != pending_.end()) {
          return true;
        }
        ++drain_;
        --n_;
        --dead_;
        release_slot(slot_of(k));
      }
      if (!advance_cursor()) return false;
    }
  }

  /// Post-pop bookkeeping for a cancellable key that fired live.
  void retire(const Key& top) {
    if ((top.meta & 1) != 0) pending_.erase(top.meta >> kSeqShift);
  }

  // --- Far-horizon heap ---------------------------------------------------

  static constexpr std::size_t kArity = 4;
  static constexpr std::size_t kLineBytes = 64;
  /// Root offset inside the 64-byte-aligned allocation: with the root at
  /// element 3, every sibling group {4i+1 .. 4i+4} lands on physical
  /// indices {4k .. 4k+3} — exactly one cache line per group.
  static constexpr std::size_t kRootPad = kArity - 1;

  /// Grows (or first-allocates) the aligned key array to hold at least
  /// `min_cap` keys. Growth is amortized doubling; contents are preserved.
  void grow_keys(std::size_t min_cap) {
    std::size_t cap = key_cap_ == 0 ? 64 : key_cap_;
    while (cap < min_cap) cap *= 2;
    auto* fresh = static_cast<Key*>(::operator new(
        (cap + kRootPad) * sizeof(Key), std::align_val_t{kLineBytes}));
    if (heap_n_ != 0) std::memcpy(fresh + kRootPad, root_, heap_n_ * sizeof(Key));
    ::operator delete(base_, std::align_val_t{kLineBytes});
    base_ = fresh;
    root_ = fresh + kRootPad;
    key_cap_ = cap;
  }

  void push_heap_key(const Key& key) {
    if (heap_n_ == key_cap_) grow_keys(heap_n_ + 1);
    // Sift up with a hole: parents slide down until key's level is found.
    std::size_t i = heap_n_++;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(key, root_[parent])) break;
      root_[i] = root_[parent];
      i = parent;
    }
    root_[i] = key;
  }

  /// Copies the root key into `out` and restores the heap invariant.
  void pop_root(Key& out) {
    out = root_[0];
    const Key last = root_[--heap_n_];
    if (heap_n_ == 0) return;
    // Sift down with a hole: the smallest child bubbles up until `last`
    // fits. Each sibling group is one aligned cache line.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = kArity * i + 1;
      if (first_child >= heap_n_) break;
      const std::size_t end_child =
          first_child + kArity < heap_n_ ? first_child + kArity : heap_n_;
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end_child; ++c) {
        if (before(root_[c], root_[best])) best = c;
      }
      if (!before(root_[best], last)) break;
      root_[i] = root_[best];
      i = best;
    }
    root_[i] = last;
  }

  // --- State --------------------------------------------------------------

  // Payload pool: fixed-size chunks (slots never move), LIFO free list.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t used_slots_ = 0;  ///< slots handed out at least once
  std::vector<std::uint32_t> free_;

  // Wheel: per-slot chain nodes, bucket heads, occupancy bitmap, cursor.
  std::vector<Node> nodes_;            ///< parallel to the payload pool
  std::vector<std::uint32_t> heads_;   ///< kWheelSize chain heads
  std::vector<std::uint64_t> bitmap_;  ///< kWheelSize occupancy bits
  std::uint64_t wheel_pos_ = 0;  ///< absolute bucket the cursor is parked on
  std::size_t wheel_count_ = 0;  ///< events currently threaded in chains

  // Loaded bucket: sorted, drained front to back.
  std::vector<Key> scratch_;
  std::size_t drain_ = 0;

  // Far-horizon heap.
  Key* base_ = nullptr;  ///< 64-byte-aligned allocation (kRootPad lead-in)
  Key* root_ = nullptr;  ///< heap element 0 (= base_ + kRootPad)
  std::size_t key_cap_ = 0;  ///< heap capacity in keys (excludes the pad)
  std::size_t heap_n_ = 0;   ///< heap size

  std::size_t n_ = 0;  ///< occupied slots: scratch pending + chains + heap
  // bbrnash-lint: allow(unordered-container) -- lookup-only (insert /
  // erase / count); never iterated, so hash order cannot affect results.
  std::unordered_set<EventId> pending_;
  std::size_t dead_ = 0;  ///< cancelled entries still occupying pool slots
  EventId next_seq_ = 1;
};

}  // namespace bbrnash
