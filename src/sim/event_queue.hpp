// Discrete-event core: a time-ordered queue of pooled event records.
//
// Ordering guarantee: events fire in non-decreasing time; events scheduled
// for the same instant fire in the order they were scheduled (FIFO via a
// monotone sequence number). This makes simulations fully deterministic.
//
// Representation. The queue is an explicit 4-ary min-heap over packed
// 16-byte sort keys (when + a meta word carrying the schedule sequence,
// the payload-slot index, and the cancellable flag); the callables live
// beside the heap in a pooled array of fixed-size payload slots recycled
// through a free list. The key array is allocated 64-byte aligned with the
// root offset so that every sibling group of four keys occupies exactly
// one cache line: the sift loops — which profiling shows dominate the
// whole simulator — touch one line per level instead of three. Payloads
// are written once at schedule() and copied out once at dispatch, never
// moved while the heap re-orders itself.
//
// Each payload slot embeds its callable in a fixed 64-byte inline buffer,
// so the packet hot path (arrivals, departures, ACK deliveries, pacing
// and RTO timers — all of which capture at most a packet plus a couple of
// pointers) schedules and fires events with ZERO heap allocations in
// steady state: slots are recycled in place and the arrays stop growing
// once the simulation reaches its high-water event count. Callables that
// are larger than the inline buffer or not trivially copyable are boxed
// on the heap (cold paths only: test lambdas, callables routed through
// std::function).
//
// This design also removes the undefined behaviour the previous
// std::priority_queue implementation had in pop(): it const_cast the
// container's top() and moved out of it. The heap is now our own array,
// and dispatch copies the (trivially copyable) payload out before the slot
// is recycled — no const object is ever mutated, which the ASan/UBSan
// preset verifies.
//
// Cancellation is lazy: cancelled entries stay in the heap and are skipped
// at pop time. Only events scheduled via schedule_cancellable() pay the
// hash-set bookkeeping; the hot path (packet arrivals/departures, which
// are never cancelled) stays allocation-free. size() reports only live
// entries (watchdog diagnostics must not overreport); raw_size() includes
// the lazily-cancelled dead entries still occupying pool slots.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace bbrnash {

using EventId = std::uint64_t;

/// Inline storage per event payload. Sized for the largest hot-path
/// callable: a delayed delivery capturing a DelayLine pointer plus a
/// Packet-with-sojourn payload (8 + 56 bytes).
inline constexpr std::size_t kEventInlineBytes = 64;

class EventQueue {
 private:
  /// What the heap sifts: 16 bytes, four per cache line. meta packs
  /// (sequence << kSeqShift) | (slot << 1) | cancellable — the sequence
  /// occupies the high bits, so comparing meta words compares sequences
  /// (slot and flag only differ when sequences differ, and sequences are
  /// unique).
  struct Key {
    TimeNs when;
    std::uint64_t meta;
  };
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(sizeof(Key) == 16);

  /// meta layout: bit 0 = cancellable, bits 1..24 = payload-slot index
  /// (16M concurrent events), bits 25..63 = schedule sequence (5e11
  /// events per simulation).
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSeqShift = kSlotBits + 1;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

  /// One pooled payload: the callable plus its dispatch thunks. Written at
  /// schedule(), copied out at dispatch, recycled through free_. Trivially
  /// copyable by construction (inline callables are restricted to
  /// trivially-copyable types), so the copy out is a plain assignment.
  struct Slot {
    void (*invoke)(std::byte*);
    void (*cleanup)(std::byte*);  ///< frees a boxed callable; null = inline
    alignas(std::max_align_t) std::byte storage[kEventInlineBytes];
  };
  static_assert(std::is_trivially_copyable_v<Slot>);

  /// Releases a dispatched slot's boxed callable at scope exit, so the box
  /// is freed even when the callable throws (a throwing event — e.g. an
  /// injected chaos fault — unwinds through the run loop after its slot
  /// was already recycled, where no other owner would clean it).
  struct FireGuard {
    Slot& s;
    ~FireGuard() {
      if (s.cleanup != nullptr) s.cleanup(s.storage);
    }
  };

 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  ~EventQueue() {
    for (std::size_t i = 0; i < n_; ++i) {
      Slot& s = slots_[slot_of(root_[i])];
      if (s.cleanup != nullptr) s.cleanup(s.storage);
    }
    ::operator delete(base_, std::align_val_t{kLineBytes});
  }

  /// Schedules a non-cancellable event at absolute time `when`.
  template <typename F>
  void schedule(TimeNs when, F&& fn) {
    push_key(when, make_meta(false), fill_slot(std::forward<F>(fn)));
  }

  /// Schedules a cancellable event; returns a handle for cancel().
  template <typename F>
  EventId schedule_cancellable(TimeNs when, F&& fn) {
    const std::uint64_t meta = make_meta(true);
    const EventId seq = meta >> kSeqShift;
    pending_.insert(seq);
    push_key(when, meta, fill_slot(std::forward<F>(fn)));
    return seq;
  }

  /// Cancels a pending cancellable event. Cancelling an already-fired or
  /// unknown id is a harmless no-op. The dead record stays pooled until it
  /// reaches the top of the heap (lazy deletion).
  void cancel(EventId id) {
    if (pending_.erase(id) != 0) ++dead_;
  }

  [[nodiscard]] bool empty() {
    prune();
    return n_ == 0;
  }

  /// Number of LIVE events (excludes lazily-cancelled dead entries, so
  /// watchdog diagnostics never overreport the backlog).
  [[nodiscard]] std::size_t size() const { return n_ - dead_; }

  /// Number of pool slots currently occupied, dead entries included.
  [[nodiscard]] std::size_t raw_size() const { return n_; }

  /// Pre-sizes the event pool to `n` slots so neither the key heap nor the
  /// payload pool reallocates while the simulation grows toward its
  /// high-water event count.
  void reserve(std::size_t n) {
    if (n > key_cap_) grow_keys(n);
    slots_.reserve(n);
    free_.reserve(n);
  }

  /// Time of the next live event; kTimeInf when empty.
  [[nodiscard]] TimeNs next_time() {
    prune();
    return n_ == 0 ? kTimeInf : root_[0].when;
  }

  /// A popped event: fire it with fn() (at most once). If destroyed
  /// unfired, any boxed callable is released.
  class Popped {
   public:
    Popped(const Popped&) = delete;
    Popped& operator=(const Popped&) = delete;
    Popped(Popped&& other) noexcept
        : when(other.when), slot_(other.slot_), live_(other.live_) {
      other.live_ = false;
    }
    Popped& operator=(Popped&&) = delete;
    ~Popped() {
      if (live_ && slot_.cleanup != nullptr) slot_.cleanup(slot_.storage);
    }

    /// Invokes the event's callable. Pre: not already fired. The payload
    /// was copied out of the pool at pop(), so the callable may freely
    /// schedule new events (growing the pool) while it runs.
    void fn() {
      assert(live_ && "event already fired");
      live_ = false;
      FireGuard guard{slot_};
      slot_.invoke(slot_.storage);
    }

    TimeNs when = 0;

   private:
    friend class EventQueue;
    Popped() = default;

    Slot slot_{};
    bool live_ = false;
  };

  /// Pops and returns the next live event. Pre: !empty().
  [[nodiscard]] Popped pop() {
    prune();
    assert(n_ != 0 && "pop() on an empty queue");
    Key top;
    pop_root(top);
    retire(top);
    Popped out;
    out.when = top.when;
    out.slot_ = slots_[slot_of(top)];  // copy out: callbacks may grow the pool
    out.live_ = true;
    free_.push_back(slot_of(top));
    return out;
  }

  /// Combined prune + deadline check + pop + dispatch — the simulator run
  /// loop's one call per event. If the next live event is due at or before
  /// `deadline`, advances `clock` to its timestamp, fires it, and returns
  /// true; otherwise leaves the queue untouched and returns false. The
  /// payload is copied to the stack before the callable runs, so the
  /// callable may freely schedule new events (growing the pool).
  bool run_one(TimeNs deadline, TimeNs& clock) {
    prune();
    if (n_ == 0 || root_[0].when > deadline) return false;
    Key top;
    pop_root(top);
    retire(top);
    Slot local = slots_[slot_of(top)];
    free_.push_back(slot_of(top));
    clock = top.when;
    FireGuard guard{local};
    local.invoke(local.storage);
    return true;
  }

 private:
  template <typename Fn>
  static void invoke_inline(std::byte* storage) {
    // bbrnash-lint: allow(reinterpret-cast) -- pooled-storage payload:
    // reads back the Fn placement-constructed into this slot by fill_slot;
    // launder makes the round-trip through std::byte storage well-defined.
    (*std::launder(reinterpret_cast<Fn*>(storage)))();
  }
  template <typename Fn>
  static void invoke_boxed(std::byte* storage) {
    Fn* boxed;
    std::memcpy(&boxed, storage, sizeof boxed);
    (*boxed)();
  }
  template <typename Fn>
  static void cleanup_boxed(std::byte* storage) {
    Fn* boxed;
    std::memcpy(&boxed, storage, sizeof boxed);
    delete boxed;
  }

  [[nodiscard]] static constexpr std::uint32_t slot_of(const Key& k) {
    return static_cast<std::uint32_t>((k.meta >> 1) & kSlotMask);
  }

  [[nodiscard]] std::uint64_t make_meta(bool cancellable) {
    // A sequence past 39 bits would make same-timestamp FIFO comparisons
    // wrap silently; no realistic run gets near 5e11 events, but fail
    // loudly rather than go nondeterministic.
    if (next_seq_ >> (64 - kSeqShift) != 0) {
      throw std::length_error{"event sequence space exhausted"};
    }
    return (next_seq_++ << kSeqShift) | (cancellable ? 1u : 0u);
  }

  /// Takes a slot from the free list (or grows the pool) and constructs
  /// the callable into it. Returns the slot index.
  template <typename F>
  std::uint32_t fill_slot(F&& fn) {
    using Fn = std::decay_t<F>;
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      if (slots_.size() > kSlotMask) {
        throw std::length_error{"event pool exhausted (16M live events)"};
      }
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[idx];
    constexpr bool fits_inline =
        sizeof(Fn) <= kEventInlineBytes &&
        alignof(Fn) <= alignof(std::max_align_t) &&
        std::is_trivially_copyable_v<Fn>;
    if constexpr (fits_inline) {
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      s.invoke = &invoke_inline<Fn>;
      s.cleanup = nullptr;
    } else {
      Fn* boxed = new Fn(std::forward<F>(fn));
      std::memcpy(s.storage, &boxed, sizeof boxed);
      s.invoke = &invoke_boxed<Fn>;
      s.cleanup = &cleanup_boxed<Fn>;
    }
    return idx;
  }

  /// Strict total order: (when, schedule sequence). Sequences are unique,
  /// so ties never happen and FIFO-at-same-timestamp is exact.
  [[nodiscard]] static bool before(const Key& a, const Key& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.meta < b.meta;
  }

  static constexpr std::size_t kArity = 4;
  static constexpr std::size_t kLineBytes = 64;
  /// Root offset inside the 64-byte-aligned allocation: with the root at
  /// element 3, every sibling group {4i+1 .. 4i+4} lands on physical
  /// indices {4k .. 4k+3} — exactly one cache line per group.
  static constexpr std::size_t kRootPad = kArity - 1;

  /// Grows (or first-allocates) the aligned key array to hold at least
  /// `min_cap` keys. Growth is amortized doubling; contents are preserved.
  void grow_keys(std::size_t min_cap) {
    std::size_t cap = key_cap_ == 0 ? 64 : key_cap_;
    while (cap < min_cap) cap *= 2;
    auto* fresh = static_cast<Key*>(::operator new(
        (cap + kRootPad) * sizeof(Key), std::align_val_t{kLineBytes}));
    if (n_ != 0) std::memcpy(fresh + kRootPad, root_, n_ * sizeof(Key));
    ::operator delete(base_, std::align_val_t{kLineBytes});
    base_ = fresh;
    root_ = fresh + kRootPad;
    key_cap_ = cap;
  }

  void push_key(TimeNs when, std::uint64_t meta, std::uint32_t slot) {
    if (n_ == key_cap_) grow_keys(n_ + 1);
    const Key key{when, (meta & ~(kSlotMask << 1)) |
                            (static_cast<std::uint64_t>(slot) << 1)};
    // Sift up with a hole: parents slide down until key's level is found.
    std::size_t i = n_++;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(key, root_[parent])) break;
      root_[i] = root_[parent];
      i = parent;
    }
    root_[i] = key;
  }

  /// Copies the root key into `out` and restores the heap invariant.
  void pop_root(Key& out) {
    out = root_[0];
    const Key last = root_[--n_];
    if (n_ == 0) return;
    // Sift down with a hole: the smallest child bubbles up until `last`
    // fits. Each sibling group is one aligned cache line.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = kArity * i + 1;
      if (first_child >= n_) break;
      const std::size_t end_child =
          first_child + kArity < n_ ? first_child + kArity : n_;
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end_child; ++c) {
        if (before(root_[c], root_[best])) best = c;
      }
      if (!before(root_[best], last)) break;
      root_[i] = root_[best];
      i = best;
    }
    root_[i] = last;
  }

  /// Post-pop bookkeeping for a cancellable key that fired live.
  void retire(const Key& top) {
    if ((top.meta & 1) != 0) pending_.erase(top.meta >> kSeqShift);
  }

  /// Drops cancelled entries sitting at the top of the heap.
  void prune() {
    while (n_ != 0) {
      const Key& top = root_[0];
      if ((top.meta & 1) == 0 ||
          pending_.find(top.meta >> kSeqShift) != pending_.end()) {
        return;
      }
      Key dead;
      pop_root(dead);
      Slot& s = slots_[slot_of(dead)];
      if (s.cleanup != nullptr) s.cleanup(s.storage);
      free_.push_back(slot_of(dead));
      --dead_;
    }
  }

  Key* base_ = nullptr;  ///< 64-byte-aligned allocation (kRootPad lead-in)
  Key* root_ = nullptr;  ///< heap element 0 (= base_ + kRootPad)
  std::size_t key_cap_ = 0;  ///< heap capacity in keys (excludes the pad)
  std::size_t n_ = 0;        ///< heap size
  std::vector<Slot> slots_;  ///< payload pool
  std::vector<std::uint32_t> free_;  ///< recycled payload slots (LIFO)
  // bbrnash-lint: allow(unordered-container) -- lookup-only (insert /
  // erase / count); never iterated, so hash order cannot affect results.
  std::unordered_set<EventId> pending_;
  std::size_t dead_ = 0;  ///< cancelled entries still occupying pool slots
  EventId next_seq_ = 1;
};

}  // namespace bbrnash
