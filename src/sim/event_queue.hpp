// Discrete-event core: a time-ordered queue of callbacks.
//
// Ordering guarantee: events fire in non-decreasing time; events scheduled
// for the same instant fire in the order they were scheduled (FIFO via a
// monotone sequence number). This makes simulations fully deterministic.
//
// Cancellation is lazy: cancelled entries stay in the heap and are skipped
// at pop time. Only events scheduled via schedule_cancellable() pay the
// hash-set bookkeeping; the hot path (packet arrivals/departures, which are
// never cancelled) stays allocation-light.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace bbrnash {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules a non-cancellable event at absolute time `when`.
  void schedule(TimeNs when, EventFn fn) {
    heap_.push(Entry{when, next_seq_++, /*cancellable=*/false, std::move(fn)});
  }

  /// Schedules a cancellable event; returns a handle for cancel().
  EventId schedule_cancellable(TimeNs when, EventFn fn) {
    const EventId seq = next_seq_++;
    heap_.push(Entry{when, seq, /*cancellable=*/true, std::move(fn)});
    pending_.insert(seq);
    return seq;
  }

  /// Cancels a pending cancellable event. Cancelling an already-fired or
  /// unknown id is a harmless no-op.
  void cancel(EventId id) { pending_.erase(id); }

  [[nodiscard]] bool empty() {
    prune();
    return heap_.empty();
  }

  /// Number of entries still in the heap (includes not-yet-pruned dead
  /// cancellable entries below the top; exact enough for diagnostics).
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the next live event; kTimeInf when empty.
  [[nodiscard]] TimeNs next_time() {
    prune();
    return heap_.empty() ? kTimeInf : heap_.top().when;
  }

  struct Popped {
    TimeNs when;
    EventFn fn;
  };

  /// Pops and returns the next live event. Pre: !empty().
  Popped pop() {
    prune();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (top.cancellable) pending_.erase(top.seq);
    return Popped{top.when, std::move(top.fn)};
  }

 private:
  struct Entry {
    TimeNs when;
    EventId seq;
    bool cancellable;
    EventFn fn;
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Drops cancelled entries sitting at the top of the heap.
  void prune() {
    while (!heap_.empty() && heap_.top().cancellable &&
           pending_.find(heap_.top().seq) == pending_.end()) {
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_seq_ = 1;
};

}  // namespace bbrnash
