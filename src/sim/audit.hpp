// Conservation-audit engine: a per-simulation byte/packet ledger.
//
// The paper's headline claim (model-vs-measured shares agreeing to ~5%)
// is only as trustworthy as the simulator's accounting, so the audit
// cross-checks *independent* counters kept by different modules against
// each other at a configurable sampling interval:
//
//   data path, per flow, in packets:
//     injected + stage_duplicated ==
//         delivered + stage_dropped + queue_dropped
//         + access_pending + stage_pending + queued + fwd_pending
//   ACK path, per flow, in packets:
//     acks_emitted + ack_stage_duplicated ==
//         acks_received + ack_stage_dropped + ack_stage_pending + rev_pending
//
// where `injected` is counted by an audit wrapper at the sender's transmit
// hook, `delivered` by the receiver, `queue_dropped`/`queued` by the
// drop-tail queue, the stage_* counters by the impairment stages, and the
// *_pending counters by the delay lines / access path — five modules that
// share no accounting code. Any double-count, lost packet, or phantom
// delivery breaks one of the equations.
//
// On top of conservation, each sample asserts: queue occupancy <= buffer
// (and internal per-flow/total consistency), sRTT >= the flow's base RTT
// (= 2x one-way propagation delay), monotone clock / cumulative sequence /
// delivered counters, cwnd > 0, and NaN/Inf guards on every floating-point
// control variable. End-of-run checks bound per-flow goodput by the peak
// bottleneck rate.
//
// Zero-cost when disabled: the experiment layer installs the counting
// wrappers and sampling events only when an audit is active, so a disabled
// audit leaves the PR 3 zero-allocation hot path untouched (asserted by
// tests/perf/test_zero_alloc.cpp and bench_perf_simcore --check).
//
// This header lives in sim/ (depends only on util/) so the ledger logic is
// unit-testable without the network stack; the experiment layer owns the
// glue that fills samples from live components.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace bbrnash {

struct AuditConfig {
  bool enabled = false;
  /// Simulated time between ledger checks.
  TimeNs sample_period = from_ms(100);
  /// Slack on the per-flow goodput <= peak-capacity bound (measurement
  /// windows are finite, so momentary bursts can exceed the long-run rate).
  double goodput_slack = 1.05;
  /// Self-test hook: at the first sample at or after this time the audit
  /// reports a synthetic violation, exercising the invariant-trip path
  /// (flight-recorder dump, RunStatus::kInvariantViolation) end to end.
  /// kTimeNone disables it. Mirrors GuardConfig::inject_failure_seeds.
  TimeNs fail_at = kTimeNone;

  /// Crash flight recorder: ring capacity in events (0 = off) and the dump
  /// target (empty = stderr). The recorder can run without the ledger
  /// (enabled == false) and vice versa.
  std::size_t recorder_events = 0;
  std::string recorder_path;

  /// True when the experiment layer must install instrumentation.
  [[nodiscard]] bool active() const noexcept {
    return enabled || recorder_events > 0;
  }

  /// Throws std::invalid_argument naming the offending knob.
  void validate() const;
};

/// Everything the audit needs to know about one flow at one sample point.
/// All counters are cumulative since t = 0.
struct FlowAuditSample {
  // Data path (packets).
  std::uint64_t injected = 0;         ///< audit wrapper at sender transmit
  std::uint64_t access_pending = 0;   ///< scheduled on the access path
  std::uint64_t stage_dropped = 0;    ///< impairment stage
  std::uint64_t stage_duplicated = 0;
  std::uint64_t stage_pending = 0;
  std::uint64_t queue_packets = 0;    ///< drop-tail queue occupancy
  std::uint64_t queue_dropped = 0;    ///< tail + AQM policy drops
  std::uint64_t fwd_pending = 0;      ///< forward delay line
  std::uint64_t delivered = 0;        ///< receiver packets_received
  // ACK path (packets). acks_emitted == delivered by construction (the
  // receiver ACKs every packet); kept separate so the equation reads off
  // the receiver's own counter.
  std::uint64_t acks_emitted = 0;
  std::uint64_t ack_stage_dropped = 0;
  std::uint64_t ack_stage_duplicated = 0;
  std::uint64_t ack_stage_pending = 0;
  std::uint64_t rev_pending = 0;      ///< reverse delay line
  std::uint64_t acks_received = 0;    ///< sender
  // Control state.
  Bytes cwnd = 0;
  double pacing_rate = 0.0;
  TimeNs srtt = kTimeNone;
  TimeNs base_rtt = 0;
  std::uint64_t cum_next = 0;         ///< receiver cumulative sequence
  Bytes delivered_bytes = 0;          ///< sender delivered-byte counter
  std::uint64_t retransmits = 0;
  std::uint64_t rtos = 0;
};

/// One sample point. The audit owns a reusable instance (sample_buffer())
/// pre-sized for the flow count, so sampling does not allocate per check.
struct AuditSample {
  TimeNs t = 0;
  Bytes queue_bytes = 0;            ///< total occupancy from the queue
  Bytes queue_flow_bytes_sum = 0;   ///< sum of per-flow occupancies
  Bytes buffer_bytes = 0;           ///< configured capacity B
  Bytes bytes_served = 0;           ///< link lifetime served bytes
  std::vector<FlowAuditSample> flows;
};

class ConservationAudit {
 public:
  ConservationAudit(const AuditConfig& cfg, std::size_t num_flows);

  // --- Counting hooks (called from the experiment layer's wrappers) -----
  void note_injected(std::uint32_t flow) {
    ++injected_[flow];
    ++access_pending_[flow];
  }
  void note_access_exit(std::uint32_t flow) { --access_pending_[flow]; }
  [[nodiscard]] std::uint64_t injected(std::uint32_t flow) const {
    return injected_[flow];
  }
  [[nodiscard]] std::uint64_t access_pending(std::uint32_t flow) const {
    return access_pending_[flow];
  }

  // --- Sampling ---------------------------------------------------------
  /// The reusable sample to fill before calling check(). `flows` is
  /// pre-sized to num_flows and value-reset by check().
  [[nodiscard]] AuditSample& sample_buffer() { return sample_; }

  /// Evaluates every invariant on sample_buffer(). Records violations (up
  /// to an internal cap) and keeps per-flow state for the monotonicity
  /// checks. Returns true when this call found a new violation.
  [[nodiscard]] bool check();

  /// End-of-run bound: per-flow goodput (bps) must not exceed the peak
  /// bottleneck rate (plus the configured slack).
  void check_final_goodput(std::uint32_t flow, double goodput_bps,
                           double peak_bps);

  [[nodiscard]] bool violated() const noexcept { return !violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  /// First violation message, or an empty string.
  [[nodiscard]] const std::string& first_violation() const;
  [[nodiscard]] std::uint64_t samples_checked() const noexcept {
    return samples_checked_;
  }

 private:
  void add_violation(std::string message);

  AuditConfig cfg_;
  std::size_t num_flows_;
  std::vector<std::uint64_t> injected_;
  std::vector<std::uint64_t> access_pending_;
  AuditSample sample_;
  std::vector<FlowAuditSample> prev_flows_;
  TimeNs prev_t_ = kTimeNone;
  Bytes prev_bytes_served_ = 0;
  bool self_test_fired_ = false;
  std::uint64_t samples_checked_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace bbrnash
