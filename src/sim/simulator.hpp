// Simulator: the simulation clock plus the event queue.
//
// Usage:
//   Simulator sim;
//   sim.schedule_in(from_ms(10), [&] { ... });
//   sim.run_until(from_sec(120));
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace bbrnash {

class Simulator {
 public:
  [[nodiscard]] TimeNs now() const noexcept { return now_; }

  /// Schedules `fn` at absolute simulated time `when` (>= now()).
  /// The callable is forwarded to the event pool as-is: keep hot-path
  /// lambdas trivially copyable and within kEventInlineBytes so they stay
  /// in the record's inline buffer (see event_queue.hpp).
  template <typename F>
  void schedule_at(TimeNs when, F&& fn) {
    assert(when >= now_ && "cannot schedule into the past");
    queue_.schedule(when, std::forward<F>(fn));
  }

  /// Schedules `fn` after a relative delay (>= 0).
  template <typename F>
  void schedule_in(TimeNs delay, F&& fn) {
    assert(delay >= 0);
    queue_.schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Cancellable variants, for timers (e.g., RTO) that are usually rearmed.
  template <typename F>
  EventId schedule_cancellable_at(TimeNs when, F&& fn) {
    assert(when >= now_);
    return queue_.schedule_cancellable(when, std::forward<F>(fn));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or the clock would pass `deadline`.
  /// The clock is left at min(deadline, time of last event). Events at
  /// exactly `deadline` are executed. A run interrupted by stop() or an
  /// exhausted event budget leaves the clock at the last executed event.
  void run_until(TimeNs deadline) {
    while (!stopped_ && !budget_exhausted() &&
           queue_.run_one(deadline, now_)) {
      ++events_executed_;
    }
    if (!stopped_ && !budget_exhausted() && now_ < deadline) now_ = deadline;
  }

  /// Runs until the event queue is empty (or stop() / budget exhaustion).
  void run() {
    while (!stopped_ && !budget_exhausted() && queue_.run_one(kTimeInf, now_)) {
      ++events_executed_;
    }
  }

  /// Stops the run loop after the current event returns.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Watchdog: caps the total number of executed events. The run loops
  /// return once the cap is reached — a deterministic abort for runaway
  /// simulations (unlike a wall-clock limit, the same scenario + seed
  /// always stops at the same event). 0 = unlimited.
  void set_event_budget(std::uint64_t max_events) noexcept {
    event_budget_ = max_events;
  }
  [[nodiscard]] bool budget_exhausted() const noexcept {
    return event_budget_ != 0 && events_executed_ >= event_budget_;
  }

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }
  /// Live (non-cancelled) events still queued — what watchdog diagnostics
  /// should report.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  /// Occupied event-pool slots including lazily-cancelled dead entries.
  [[nodiscard]] std::size_t pending_events_raw() const noexcept {
    return queue_.raw_size();
  }
  /// Pre-sizes the event pool (see EventQueue::reserve).
  void reserve_events(std::size_t n) { queue_.reserve(n); }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_budget_ = 0;
};

}  // namespace bbrnash
