// Simulator: the simulation clock plus the event queue.
//
// Usage:
//   Simulator sim;
//   sim.schedule_in(from_ms(10), [&] { ... });
//   sim.run_until(from_sec(120));
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace bbrnash {

class Simulator {
 public:
  [[nodiscard]] TimeNs now() const noexcept { return now_; }

  /// Schedules `fn` at absolute simulated time `when` (>= now()).
  void schedule_at(TimeNs when, EventFn fn) {
    assert(when >= now_ && "cannot schedule into the past");
    queue_.schedule(when, std::move(fn));
  }

  /// Schedules `fn` after a relative delay (>= 0).
  void schedule_in(TimeNs delay, EventFn fn) {
    assert(delay >= 0);
    queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Cancellable variants, for timers (e.g., RTO) that are usually rearmed.
  EventId schedule_cancellable_at(TimeNs when, EventFn fn) {
    assert(when >= now_);
    return queue_.schedule_cancellable(when, std::move(fn));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or the clock would pass `deadline`.
  /// The clock is left at min(deadline, time of last event). Events at
  /// exactly `deadline` are executed. A run interrupted by stop() or an
  /// exhausted event budget leaves the clock at the last executed event.
  void run_until(TimeNs deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline && !stopped_ &&
           !budget_exhausted()) {
      auto ev = queue_.pop();
      now_ = ev.when;
      ev.fn();
      ++events_executed_;
    }
    if (!stopped_ && !budget_exhausted() && now_ < deadline) now_ = deadline;
  }

  /// Runs until the event queue is empty (or stop() / budget exhaustion).
  void run() {
    while (!queue_.empty() && !stopped_ && !budget_exhausted()) {
      auto ev = queue_.pop();
      now_ = ev.when;
      ev.fn();
      ++events_executed_;
    }
  }

  /// Stops the run loop after the current event returns.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Watchdog: caps the total number of executed events. The run loops
  /// return once the cap is reached — a deterministic abort for runaway
  /// simulations (unlike a wall-clock limit, the same scenario + seed
  /// always stops at the same event). 0 = unlimited.
  void set_event_budget(std::uint64_t max_events) noexcept {
    event_budget_ = max_events;
  }
  [[nodiscard]] bool budget_exhausted() const noexcept {
    return event_budget_ != 0 && events_executed_ >= event_budget_;
  }

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_budget_ = 0;
};

}  // namespace bbrnash
